(** Join-order selection: classic dynamic programming over quantifier
    subsets (System-R style), with a greedy fallback for very wide
    joins.  Cost = sum of {!Cost.stream_cost} over intermediate results
    (per-tuple work plus per-batch table-queue overhead). *)

module Qgm = Starq.Qgm

type input = {
  quants : Qgm.quant array;
  cards : float array; (* estimated cardinality per quantifier *)
  (* predicates with the set of local quantifier indexes they touch *)
  preds : (Qgm.bpred * int list) list;
}

let subset_card (inp : input) (mask : int) : float =
  let cards = ref [] in
  Array.iteri (fun i c -> if mask land (1 lsl i) <> 0 then cards := c :: !cards) inp.cards;
  let applicable =
    List.filter_map
      (fun (p, idxs) ->
        if idxs <> [] && List.for_all (fun i -> mask land (1 lsl i) <> 0) idxs
        then Some p
        else None)
      inp.preds
  in
  let resolve qid =
    Array.to_list inp.quants
    |> List.find_map (fun q ->
           if q.Qgm.qid = qid then Some q.Qgm.over else None)
  in
  Cost.join_cardinality ~resolve !cards applicable

(** Is quantifier [j] connected to subset [mask] by some join predicate? *)
let connected (inp : input) mask j =
  List.exists
    (fun (_, idxs) ->
      List.mem j idxs
      && List.exists (fun i -> i <> j && mask land (1 lsl i) <> 0) idxs)
    inp.preds

let order_dp (inp : input) : int list =
  let n = Array.length inp.quants in
  let full = (1 lsl n) - 1 in
  (* best.(mask) = (cost, order as reversed index list) *)
  let best = Array.make (full + 1) None in
  for i = 0 to n - 1 do
    (* singleton seed: the extra cost of reading the quantifier's base
       table out of spilled cold chunks (each table's plain scan cost
       is already charged when the DP extends its mask, so only the
       cold-access surcharge goes here).  0.0 with nothing cold, so
       default plans are exactly as before; a mostly-spilled table
       becomes a worse driver than an equally large resident one. *)
    let access =
      match inp.quants.(i).Qgm.over.Qgm.kind with
      | Qgm.Base t ->
        Cost.stream_cost (inp.cards.(i) *. Cost.scan_access_factor t)
        -. Cost.stream_cost inp.cards.(i)
      | _ -> 0.0
    in
    best.(1 lsl i) <- Some (access, [ i ])
  done;
  for mask = 1 to full do
    match best.(mask) with
    | None -> ()
    | Some (cost, order) ->
      let card = subset_card inp mask in
      (* prefer connected extensions; fall back to any *)
      let candidates = ref [] in
      for j = 0 to n - 1 do
        if mask land (1 lsl j) = 0 then candidates := j :: !candidates
      done;
      let conn = List.filter (connected inp mask) !candidates in
      let extensions = if conn <> [] then conn else !candidates in
      List.iter
        (fun j ->
          let mask' = mask lor (1 lsl j) in
          let cost' = cost +. Cost.stream_cost card in
          match best.(mask') with
          | Some (c, _) when c <= cost' -> ()
          | _ -> best.(mask') <- Some (cost', j :: order))
        extensions
  done;
  match best.(full) with
  | Some (_, order) -> List.rev order
  | None -> List.init n (fun i -> i)

let order_greedy (inp : input) : int list =
  let n = Array.length inp.quants in
  let remaining = ref (List.init n (fun i -> i)) in
  let smallest =
    List.fold_left
      (fun acc i -> if inp.cards.(i) < inp.cards.(acc) then i else acc)
      (List.hd !remaining) !remaining
  in
  let order = ref [ smallest ] in
  remaining := List.filter (fun i -> i <> smallest) !remaining;
  let mask = ref (1 lsl smallest) in
  while !remaining <> [] do
    let conn = List.filter (connected inp !mask) !remaining in
    let pool = if conn <> [] then conn else !remaining in
    let next =
      List.fold_left
        (fun acc i ->
          let c_acc = subset_card inp (!mask lor (1 lsl acc)) in
          let c_i = subset_card inp (!mask lor (1 lsl i)) in
          if c_i < c_acc then i else acc)
        (List.hd pool) pool
    in
    order := next :: !order;
    mask := !mask lor (1 lsl next);
    remaining := List.filter (fun i -> i <> next) !remaining
  done;
  List.rev !order

(** Choose an order (as indexes into [inp.quants]). *)
let choose (inp : input) : int list =
  let n = Array.length inp.quants in
  if n = 0 then []
  else if n <= 12 then order_dp inp
  else order_greedy inp
