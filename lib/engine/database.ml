(** The database engine facade: parse → QGM → rewrite → plan → execute,
    plus DDL and DML.

    This is the "integrated DBMS" of the paper (Sect. 3): one catalog,
    one query pipeline, which the XNF extension (lib/core) plugs into. *)

open Relcore
module Ast = Sqlkit.Ast
module Qgm = Starq.Qgm
module Plan = Optimizer.Plan

let log_src = Logs.Src.create "xnfdb.engine" ~doc:"query pipeline tracing"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Snapshot of the monotone cache/colstore/join-filter counters, taken
   at statement start so EXPLAIN's instrumentation sections report the
   work of {e this} statement instead of process lifetime. *)
type marks = {
  mk_plan_hits : int;
  mk_plan_misses : int;
  mk_result_hits : int;
  mk_result_misses : int;
  mk_result_evictions : int;
  mk_cs_scanned : int;
  mk_cs_skipped : int;
  mk_cs_materialized : int;
  mk_cs_encoded : int;
  mk_cs_decoded : int;
  mk_cs_faulted : int;
  mk_cs_evicted : int;
  mk_cs_bytes_spilled : int;
  mk_cs_bytes_faulted : int;
  mk_jf_built : int;
  mk_jf_chunks : int;
  mk_jf_rows : int;
  mk_jf_dropped : int;
}

type t = {
  catalog : Catalog.t;
  txn : Txn.t;
  (* prepared-plan cache: normalized query text × ablation flags → plan.
     Invalidated wholesale by DDL; DML leaves plans valid (they reference
     table objects, not snapshots), it only ages their cost estimates —
     standard prepared-statement behavior. *)
  plan_cache : (string, Plan.compiled) Hashtbl.t;
  (* compiled-object cache slot for layers above the engine (the XNF
     compiler stores its [compiled] values here behind its own exception
     constructor); shares the plan cache's DDL invalidation. *)
  plugin_cache : (string, exn) Hashtbl.t;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable marks : marks; (* counter snapshot of the current statement *)
}

let zero_marks =
  {
    mk_plan_hits = 0;
    mk_plan_misses = 0;
    mk_result_hits = 0;
    mk_result_misses = 0;
    mk_result_evictions = 0;
    mk_cs_scanned = 0;
    mk_cs_skipped = 0;
    mk_cs_materialized = 0;
    mk_cs_encoded = 0;
    mk_cs_decoded = 0;
    mk_cs_faulted = 0;
    mk_cs_evicted = 0;
    mk_cs_bytes_spilled = 0;
    mk_cs_bytes_faulted = 0;
    mk_jf_built = 0;
    mk_jf_chunks = 0;
    mk_jf_rows = 0;
    mk_jf_dropped = 0;
  }

type result =
  | Rows of Schema.t * Tuple.t list
  | Affected of int
  | Done of string

let create () =
  {
    catalog = Catalog.create ();
    txn = Txn.create ();
    plan_cache = Hashtbl.create 32;
    plugin_cache = Hashtbl.create 16;
    plan_hits = 0;
    plan_misses = 0;
    marks = zero_marks;
  }

(** A session-scoped handle onto the same database: shares the catalog
    (tables, views, indexes, columnar tiers — and through it the
    process-wide result cache and IVM state), but carries its own
    transaction and its own prepared-plan/plugin caches.  This is what
    each server connection gets: one client's open txn or prepared
    statements never leak into another's. *)
let session parent =
  {
    catalog = parent.catalog;
    txn = Txn.create ();
    plan_cache = Hashtbl.create 32;
    plugin_cache = Hashtbl.create 16;
    plan_hits = 0;
    plan_misses = 0;
    marks = zero_marks;
  }

let catalog db = db.catalog
let txn db = db.txn

(* -- plan-cache plumbing ------------------------------------------------- *)

(** [XNFDB_PLAN_CACHE] knob: default on; "0"/"false"/"off"/"no" disable.
    Read per call, like the other env knobs, so tests can flip it. *)
let plan_cache_enabled () =
  match Sys.getenv_opt "XNFDB_PLAN_CACHE" with
  | Some ("0" | "false" | "off" | "no") -> false
  | _ -> true

(** Collapse whitespace runs and trim, so formatting differences don't
    split cache entries.  Contents of string literals are preserved
    whitespace and all (a space inside quotes is data). *)
let normalize_query_text (sql : string) : string =
  let buf = Buffer.create (String.length sql) in
  let in_str = ref false and pending_sp = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        Buffer.add_char buf c;
        if c = '\'' then in_str := false
      end
      else
        match c with
        | ' ' | '\t' | '\n' | '\r' -> pending_sp := true
        | c ->
          if !pending_sp && Buffer.length buf > 0 then Buffer.add_char buf ' ';
          pending_sp := false;
          Buffer.add_char buf c;
          if c = '\'' then in_str := true)
    sql;
  Buffer.contents buf

(* Crude bound so a query-generating workload can't grow the table
   without limit; wholesale reset is fine at this size. *)
let plan_cache_capacity = 512

let invalidate_plans db =
  Hashtbl.reset db.plan_cache;
  Hashtbl.reset db.plugin_cache

let plugin_cache_find db key =
  match Hashtbl.find_opt db.plugin_cache key with
  | Some _ as hit ->
    db.plan_hits <- db.plan_hits + 1;
    hit
  | None ->
    db.plan_misses <- db.plan_misses + 1;
    None

let plugin_cache_store db key payload =
  if Hashtbl.length db.plugin_cache >= plan_cache_capacity then
    Hashtbl.reset db.plugin_cache;
  Hashtbl.replace db.plugin_cache key payload

type cache_stats = {
  plan_hits : int;
  plan_misses : int;
  plan_entries : int; (* prepared plans + plugin-cached compilations *)
  result_hits : int;
  result_misses : int;
  result_evictions : int;
  result_entries : int;
  result_bytes : int;
}

let cache_stats (db : t) =
  let r = Executor.Result_cache.stats () in
  {
    plan_hits = db.plan_hits;
    plan_misses = db.plan_misses;
    plan_entries = Hashtbl.length db.plan_cache + Hashtbl.length db.plugin_cache;
    result_hits = r.Executor.Result_cache.hits;
    result_misses = r.Executor.Result_cache.misses;
    result_evictions = r.Executor.Result_cache.evictions;
    result_entries = r.Executor.Result_cache.entries;
    result_bytes = r.Executor.Result_cache.bytes;
  }

(** Run [f] as one atomic transaction against this database. *)
let atomically db f = Txn.atomically db.txn f

(* -- per-statement counter windows --------------------------------------- *)

let take_marks (db : t) : marks =
  let r = Executor.Result_cache.stats () in
  let ct = Colstore.totals in
  let jt = Bloom.totals in
  {
    mk_plan_hits = db.plan_hits;
    mk_plan_misses = db.plan_misses;
    mk_result_hits = r.Executor.Result_cache.hits;
    mk_result_misses = r.Executor.Result_cache.misses;
    mk_result_evictions = r.Executor.Result_cache.evictions;
    mk_cs_scanned = ct.Colstore.chunks_scanned;
    mk_cs_skipped = ct.Colstore.chunks_skipped;
    mk_cs_materialized = ct.Colstore.rows_materialized;
    mk_cs_encoded = ct.Colstore.chunks_encoded;
    mk_cs_decoded = ct.Colstore.chunks_decoded;
    mk_cs_faulted = ct.Colstore.chunks_faulted;
    mk_cs_evicted = ct.Colstore.chunks_evicted;
    mk_cs_bytes_spilled = ct.Colstore.bytes_spilled;
    mk_cs_bytes_faulted = ct.Colstore.bytes_faulted;
    mk_jf_built = jt.Bloom.filters_built;
    mk_jf_chunks = jt.Bloom.chunks_skipped;
    mk_jf_rows = jt.Bloom.rows_skipped;
    mk_jf_dropped = jt.Bloom.filters_dropped;
  }

(** Open a new per-statement counter window: the instrumentation
    sections of [explain] / [explain_analyze] report deltas against the
    last mark, so one statement's EXPLAIN never shows another's (or the
    whole process's) cache and colstore traffic. *)
let mark_statement (db : t) : unit = db.marks <- take_marks db

(** The cache/colstore/join-filter report for the current statement
    window.  Counters are deltas since {!mark_statement}; entry counts,
    byte totals and the spill budget are gauges and shown as-is. *)
let counter_sections (db : t) : string =
  let m = db.marks in
  let s = cache_stats db in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "== caches (this statement) ==\n";
  Buffer.add_string buf
    (Printf.sprintf "  plan cache: %d entries, %d hits, %d misses%s\n"
       s.plan_entries
       (s.plan_hits - m.mk_plan_hits)
       (s.plan_misses - m.mk_plan_misses)
       (if plan_cache_enabled () then "" else " (disabled)"));
  Buffer.add_string buf
    (Printf.sprintf
       "  result cache: %d entries, %d bytes, %d hits, %d misses, %d \
        evictions%s\n"
       s.result_entries s.result_bytes
       (s.result_hits - m.mk_result_hits)
       (s.result_misses - m.mk_result_misses)
       (s.result_evictions - m.mk_result_evictions)
       (if Executor.Result_cache.enabled () then "" else " (disabled)"));
  let ct = Colstore.totals in
  Buffer.add_string buf "== colstore (this statement) ==\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  chunks scanned: %d, chunks skipped: %d, rows materialized: %d%s\n"
       (ct.Colstore.chunks_scanned - m.mk_cs_scanned)
       (ct.Colstore.chunks_skipped - m.mk_cs_skipped)
       (ct.Colstore.rows_materialized - m.mk_cs_materialized)
       (if Colstore.enabled () then "" else " (disabled)"));
  Buffer.add_string buf
    (Printf.sprintf
       "  chunks encoded: %d, decoded: %d, faulted: %d, evicted: %d\n"
       (ct.Colstore.chunks_encoded - m.mk_cs_encoded)
       (ct.Colstore.chunks_decoded - m.mk_cs_decoded)
       (ct.Colstore.chunks_faulted - m.mk_cs_faulted)
       (ct.Colstore.chunks_evicted - m.mk_cs_evicted));
  Buffer.add_string buf
    (Printf.sprintf
       "  spill: budget %s, resident %d bytes, spilled %d bytes (this \
        statement: %d spilled, %d faulted)\n"
       (let b = Colstore.budget_bytes () in
        if b = 0 then "off"
        else Printf.sprintf "%d MB/table" (b / (1024 * 1024)))
       (Colstore.global_resident_bytes ())
       (Colstore.global_spilled_bytes ())
       (ct.Colstore.bytes_spilled - m.mk_cs_bytes_spilled)
       (ct.Colstore.bytes_faulted - m.mk_cs_bytes_faulted));
  let jt = Bloom.totals in
  Buffer.add_string buf "== join filters (this statement) ==\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  filters built: %d, chunks skipped: %d, rows skipped: %d, filters \
        dropped: %d%s\n"
       (jt.Bloom.filters_built - m.mk_jf_built)
       (jt.Bloom.chunks_skipped - m.mk_jf_chunks)
       (jt.Bloom.rows_skipped - m.mk_jf_rows)
       (jt.Bloom.filters_dropped - m.mk_jf_dropped)
       (if Bloom.enabled () then "" else " (disabled)"));
  Buffer.contents buf

(* -- query pipeline ---------------------------------------------------- *)

(** Compile a query AST down to an executable plan.  [rewrite] and
    [share] expose the ablation switches used by the benchmarks. *)
let compile_ast ?(rewrite = true) ?(share = true) ?join_method db
    (q : Ast.query) : Plan.compiled =
  let g = Starq.Build.build_query db.catalog q in
  if rewrite then begin
    let stats = Starq.Engine.rewrite_graph g in
    Log.debug (fun m ->
        m "rewrite: %s"
          (String.concat ", "
             (List.map (fun (n, c) -> Printf.sprintf "%s x%d" n c) stats)))
  end;
  let compiled = Optimizer.Planner.compile ~share ?join_method g in
  Log.debug (fun m ->
      m "plan (%d nodes):@
%s" (Plan.count_nodes compiled.Plan.plan)
        (Plan.explain compiled.Plan.plan));
  compiled

(** Compile query text, going through the prepared-plan cache: a repeat
    of the same (normalized) text with the same ablation flags skips
    parse → QGM build → rewrite → join ordering and returns the compiled
    plan directly.  [cache] defaults to the [XNFDB_PLAN_CACHE] knob. *)
let compile_query ?rewrite ?share ?join_method ?cache db (sql : string) :
    Plan.compiled =
  let use =
    match cache with Some b -> b | None -> plan_cache_enabled ()
  in
  if not use then
    compile_ast ?rewrite ?share ?join_method db
      (Sqlkit.Parser.parse_query_string sql)
  else begin
    let key =
      Printf.sprintf "%b|%b|%s|%s"
        (Option.value rewrite ~default:true)
        (Option.value share ~default:true)
        (match join_method with
        | None | Some `Auto -> "auto"
        | Some `Hash -> "hash"
        | Some `Merge -> "merge")
        (normalize_query_text sql)
    in
    match Hashtbl.find_opt db.plan_cache key with
    | Some c ->
      db.plan_hits <- db.plan_hits + 1;
      c
    | None ->
      db.plan_misses <- db.plan_misses + 1;
      let c =
        compile_ast ?rewrite ?share ?join_method db
          (Sqlkit.Parser.parse_query_string sql)
      in
      if Hashtbl.length db.plan_cache >= plan_cache_capacity then
        Hashtbl.reset db.plan_cache;
      Hashtbl.replace db.plan_cache key c;
      c
  end

(** Run a SELECT and return schema + result batches — the table queue
    itself, without flattening.  [domains > 1] drains the plan through
    the morsel-parallel executor (identical rows, multicore); default is
    the sequential executor. *)
let query_batches ?rewrite ?share ?ctx ?domains ?cache db (sql : string) :
    Schema.t * Batch.t list =
  let c = compile_query ?rewrite ?share ?cache db sql in
  let batches =
    match domains with
    | Some d when d > 1 -> Executor.Exec_par.run_batches ?ctx ~domains:d c
    | _ -> Executor.Exec.run_batches ?ctx c
  in
  (c.Plan.out_schema, batches)

(** Run a SELECT and return schema + rows. *)
let query ?rewrite ?share ?ctx ?domains ?cache db (sql : string) :
    Schema.t * Tuple.t list =
  let schema, batches =
    query_batches ?rewrite ?share ?ctx ?domains ?cache db sql
  in
  (schema, Batch.list_to_rows batches)

let query_rows ?rewrite ?share ?ctx ?domains ?cache db sql =
  snd (query ?rewrite ?share ?ctx ?domains ?cache db sql)

(** EXPLAIN: the rewritten QGM and the chosen plan.  The
    instrumentation sections cover only this statement (here: just its
    compilation — nothing executes), via {!mark_statement}. *)
let explain db (sql : string) : string =
  mark_statement db;
  let q = Sqlkit.Parser.parse_query_string sql in
  let g = Starq.Build.build_query db.catalog q in
  let stats = Starq.Engine.rewrite_graph g in
  let c = Optimizer.Planner.compile g in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "== rewritten QGM ==\n";
  Buffer.add_string buf (Qgm.dump_graph g);
  Buffer.add_string buf "== rewrite rules fired ==\n";
  List.iter
    (fun (name, n) -> Buffer.add_string buf (Printf.sprintf "  %s: %d\n" name n))
    stats;
  Buffer.add_string buf "== plan ==\n";
  Buffer.add_string buf (Plan.explain c.Plan.plan);
  Buffer.add_string buf (counter_sections db);
  Buffer.contents buf

(** EXPLAIN ANALYZE: compile through the prepared-plan cache, execute
    with per-operator attribution armed, and report estimated vs actual
    rows, per-operator inclusive wall time and q-error, plus this
    statement's cache/colstore/join-filter deltas.  [domains > 1] runs
    the morsel-parallel executor (workers tally rows into private
    partials; wall time lands on pipeline roots). *)
let explain_analyze ?domains db (sql : string) : string =
  mark_statement db;
  let t0 = Executor.Opstats.now () in
  let c = compile_query db sql in
  let acc = Executor.Opstats.create1 c.Plan.plan in
  let ctx = Executor.Exec.make_ctx () in
  ctx.Executor.Exec.analyze <- Some acc;
  let batches =
    match domains with
    | Some d when d > 1 -> Executor.Exec_par.run_batches ~ctx ~domains:d c
    | _ -> Executor.Exec.run_batches ~ctx c
  in
  acc.Executor.Opstats.total_wall <- Executor.Opstats.now () -. t0;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== plan (analyzed) ==\n";
  Buffer.add_string buf (Executor.Opstats.render acc);
  Buffer.add_string buf
    (Printf.sprintf "rows returned: %d\n" (Batch.list_length batches));
  Buffer.add_string buf (counter_sections db);
  Buffer.contents buf

(* -- DML helpers -------------------------------------------------------- *)

(** Compile a WHERE predicate of UPDATE/DELETE against a single table
    into an executable [Plan.ppred].  Subqueries are supported (compiled
    as predicate-level probes). *)
let compile_row_ppred db (table : Base_table.t) (pred : Ast.pred) : Plan.ppred =
  let bbox = Qgm.base_box table in
  let quant = Qgm.make_quant bbox in
  let owner = Qgm.make_box Qgm.Select ~head:[||] in
  owner.Qgm.quants <- [ quant ];
  let scopes =
    [ [ { Starq.Build.alias = Base_table.name table |> String.lowercase_ascii; quant } ] ]
  in
  let bp =
    Starq.Build.build_pred ~conjunctive:false db.catalog scopes ~owner pred
  in
  let width = Schema.arity (Base_table.schema table) in
  let layout = [ (quant.Qgm.qid, (0, width)) ] in
  let pctx =
    { Optimizer.Planner.consumers = Hashtbl.create 4; outer = []; share = false;
      join_method = `Auto }
  in
  Optimizer.Planner.compile_pred pctx [ layout ] bp

let compile_row_expr _db (table : Base_table.t) (e : Ast.expr) :
    Tuple.t -> Value.t =
  let bbox = Qgm.base_box table in
  let quant = Qgm.make_quant bbox in
  let scopes =
    [ [ { Starq.Build.alias = Base_table.name table |> String.lowercase_ascii; quant } ] ]
  in
  let be = Starq.Build.build_expr scopes e in
  let width = Schema.arity (Base_table.schema table) in
  let layout = [ (quant.Qgm.qid, (0, width)) ] in
  let sc = Optimizer.Planner.compile_scalar (Optimizer.Planner.resolver [ layout ]) be in
  fun tuple -> Executor.Eval.scalar [] tuple sc

let const_expr_value (e : Ast.expr) : Value.t =
  let rec go = function
    | Ast.Lit v -> v
    | Ast.Neg e -> Executor.Eval.negate (go e)
    | Ast.Binop (op, a, b) -> Executor.Eval.arith op (go a) (go b)
    | Ast.Fn (name, args) -> Executor.Eval.apply_fn name (List.map go args)
    | Ast.Col _ | Ast.Agg _ ->
      Errors.semantic_error "INSERT values must be constant expressions"
  in
  go e

(* -- statement execution ------------------------------------------------ *)

(** Hook through which the XNF layer translates DML on a
    [view.component] target into DML on the underlying base table
    (updatable-view translation, paper Sect. 2).  Registered by
    [Xnf.Updatability] at link time. *)
let component_dml_translator :
    (Catalog.t ->
    view:string ->
    component:string ->
    Ast.stmt ->
    Ast.stmt option)
    option
    ref =
  ref None

(** If the DML target is [view.component], rewrite the statement against
    the base table; [None] when the target is an ordinary table. *)
let resolve_dml_target db (table_name : string) (stmt : Ast.stmt) :
    Ast.stmt option =
  match String.index_opt table_name '.' with
  | None -> None
  | Some i -> begin
    let view = String.sub table_name 0 i in
    let component =
      String.sub table_name (i + 1) (String.length table_name - i - 1)
    in
    match !component_dml_translator with
    | Some translate -> begin
      match translate db.catalog ~view ~component stmt with
      | Some stmt' -> Some stmt'
      | None -> Errors.catalog_error "unknown XNF view %S" view
    end
    | None ->
      Errors.semantic_error "no XNF layer registered to update %S" table_name
  end

(* Outside an open transaction each DML statement is its own commit:
   publish the table's new version so snapshot pins advance with it
   (inside a txn, [Txn.bump_touched] publishes at the boundary). *)
let autocommit_publish db table =
  if not (Txn.is_active db.txn) then Snapshot.publish [ table ]

let exec_insert db ~table_name ~columns ~rows =
  let table = Catalog.find_table db.catalog table_name in
  let schema = Base_table.schema table in
  let positions =
    match columns with
    | None -> Array.init (Schema.arity schema) Fun.id
    | Some cols -> Array.of_list (List.map (Schema.find schema) cols)
  in
  let count = ref 0 in
  List.iter
    (fun exprs ->
      if List.length exprs <> Array.length positions then
        Errors.semantic_error "INSERT arity mismatch";
      let row = Array.make (Schema.arity schema) Value.Null in
      List.iteri (fun i e -> row.(positions.(i)) <- const_expr_value e) exprs;
      let rid = Base_table.insert table row in
      Txn.record db.txn (Txn.U_insert (table, rid));
      incr count)
    rows;
  autocommit_publish db table;
  Affected !count

(* Victim finding for UPDATE/DELETE goes through the executor's batch
   layer ([Exec.scan_victims]): the predicate is evaluated once per
   batch over a selection vector — with zone-map pruning on the columnar
   path — instead of once per row through the interpreter.  Victims come
   back descending by rid, the order the historical per-row fold
   produced, which unique-violation timing (e.g. [SET k = k + 1] on a
   unique column) observably depends on. *)
let exec_update db ~table_name ~sets ~where =
  let table = Catalog.find_table db.catalog table_name in
  let schema = Base_table.schema table in
  let pp = compile_row_ppred db table where in
  let setters =
    List.map (fun (c, e) -> (Schema.find schema c, compile_row_expr db table e)) sets
  in
  let ctx = Executor.Exec.make_ctx () in
  let victims = Executor.Exec.scan_victims ctx table pp in
  List.iter
    (fun (rid, tuple) ->
      let row = Array.copy tuple in
      List.iter (fun (i, f) -> row.(i) <- f tuple) setters;
      Txn.record db.txn (Txn.U_update (table, rid, Array.copy tuple));
      Base_table.update table rid row)
    victims;
  autocommit_publish db table;
  Affected (List.length victims)

let exec_delete db ~table_name ~where =
  let table = Catalog.find_table db.catalog table_name in
  let pp = compile_row_ppred db table where in
  let ctx = Executor.Exec.make_ctx () in
  let victims = Executor.Exec.scan_victims ctx table pp in
  List.iter
    (fun (rid, tuple) ->
      Txn.record db.txn (Txn.U_delete (table, Array.copy tuple));
      Base_table.delete table rid)
    victims;
  autocommit_publish db table;
  Affected (List.length victims)

(** Heuristic: is a view body XNF? *)
let looks_like_xnf body =
  let tokens = Sqlkit.Lexer.tokenize body in
  Array.length tokens >= 2
  && (match tokens.(0).Sqlkit.Token.token with
     | Sqlkit.Token.Ident "out" -> true
     | _ -> false)

let rec exec_stmt db (stmt : Ast.stmt) : result =
  (* DDL is not undo-logged: refuse it inside a transaction *)
  (match stmt with
  | Ast.Create_table _ | Ast.Create_index _ | Ast.Create_view _
  | Ast.Drop_table _ | Ast.Drop_view _
    when Txn.is_active db.txn ->
    Errors.execution_error "DDL is not allowed inside a transaction"
  | _ -> ());
  match stmt with
  | Ast.Select_stmt q ->
    let c = compile_ast db q in
    Rows (c.Plan.out_schema, Executor.Exec.run c)
  | Ast.Create_table { table_name; columns; primary_key } ->
    let schema =
      Schema.make
        (List.map
           (fun { Ast.col_name; col_type; col_nullable } ->
             Schema.column ~nullable:col_nullable col_name col_type)
           columns)
    in
    let table = Base_table.create ?primary_key ~name:table_name schema in
    Catalog.add_table db.catalog table;
    invalidate_plans db;
    Done (Printf.sprintf "table %s created" table_name)
  | Ast.Create_index { index_name; on_table; columns; unique } ->
    let table = Catalog.find_table db.catalog on_table in
    ignore (Base_table.create_index table ~idx_name:index_name ~columns ~unique);
    invalidate_plans db;
    Done (Printf.sprintf "index %s created" index_name)
  | Ast.Create_view { view_name; body_text } ->
    let language = if looks_like_xnf body_text then `Xnf else `Sql in
    Catalog.add_view db.catalog { Catalog.view_name; language; text = body_text };
    invalidate_plans db;
    Done (Printf.sprintf "view %s created" view_name)
  | Ast.Insert { table_name; columns; rows } -> begin
    match resolve_dml_target db table_name stmt with
    | Some stmt' -> exec_stmt db stmt'
    | None -> exec_insert db ~table_name ~columns ~rows
  end
  | Ast.Update { table_name; sets; where } -> begin
    match resolve_dml_target db table_name stmt with
    | Some stmt' -> exec_stmt db stmt'
    | None -> exec_update db ~table_name ~sets ~where
  end
  | Ast.Delete { table_name; where } -> begin
    match resolve_dml_target db table_name stmt with
    | Some stmt' -> exec_stmt db stmt'
    | None -> exec_delete db ~table_name ~where
  end
  | Ast.Drop_table name ->
    (* release the columnar tier state (chunk arrays + spill mapping)
       before unhooking the table, so reusing the Database doesn't
       accumulate dead mmap segments *)
    (match Catalog.find_table_opt db.catalog name with
    | Some t -> Base_table.release t
    | None -> ());
    Catalog.drop_table db.catalog name;
    invalidate_plans db;
    Done (Printf.sprintf "table %s dropped" name)
  | Ast.Drop_view name ->
    Catalog.drop_view db.catalog name;
    invalidate_plans db;
    Done (Printf.sprintf "view %s dropped" name)
  | Ast.Begin_txn ->
    Txn.begin_txn db.txn;
    Done "transaction started"
  | Ast.Commit_txn ->
    Txn.commit db.txn;
    Done "committed"
  | Ast.Rollback_txn ->
    Txn.rollback db.txn;
    Done "rolled back"

(** [strip_keyword s kw]: [Some rest] when [s] starts with the keyword
    (case-insensitive, followed by whitespace), with the remainder
    trimmed.  Used to peel [EXPLAIN [ANALYZE]] prefixes — which are not
    part of the statement grammar — off query text. *)
let strip_keyword (s : string) (kw : string) : string option =
  let s = String.trim s in
  let n = String.length kw in
  if
    String.length s > n
    && String.uppercase_ascii (String.sub s 0 n) = kw
    &&
    match s.[n] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  then Some (String.trim (String.sub s n (String.length s - n)))
  else None

(** Execute one SQL statement given as text.  SELECTs route through the
    prepared-plan cache (the text is at hand here, unlike in
    {!exec_stmt}), so the REPL and script surfaces get repeat-query
    reuse too.  [EXPLAIN <query>] and [EXPLAIN ANALYZE <query>] are
    handled here (they are a front-end affordance, not grammar);
    [domains] selects the executor EXPLAIN ANALYZE profiles. *)
let exec ?domains db (sql : string) : result =
  match strip_keyword sql "EXPLAIN" with
  | Some rest -> (
    match strip_keyword rest "ANALYZE" with
    | Some q -> Done (explain_analyze ?domains db q)
    | None -> Done (explain db rest))
  | None -> (
    match Sqlkit.Parser.parse_stmt sql with
    | Ast.Select_stmt _ ->
      let c = compile_query db sql in
      Rows (c.Plan.out_schema, Executor.Exec.run c)
    | stmt -> exec_stmt db stmt)

(** Split a script on ';' at top level: string literals and [--]
    comments are respected. *)
let split_script (text : string) : string list =
  let stmts = ref [] and buf = Buffer.create 128 in
  let in_str = ref false in
  let i = ref 0 in
  let n = String.length text in
  while !i < n do
    let c = text.[!i] in
    if !in_str then begin
      Buffer.add_char buf c;
      if c = '\'' then in_str := false;
      incr i
    end
    else if c = '\'' then begin
      in_str := true;
      Buffer.add_char buf c;
      incr i
    end
    else if c = '-' && !i + 1 < n && text.[!i + 1] = '-' then begin
      (* line comment: skip to end of line *)
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = ';' then begin
      stmts := Buffer.contents buf :: !stmts;
      Buffer.clear buf;
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  stmts := Buffer.contents buf :: !stmts;
  List.rev !stmts |> List.filter (fun s -> String.trim s <> "")

(** Execute a batch of ';'-separated statements (a tiny script runner
    used by examples and tests). *)
let exec_script db (script : string) : result list =
  List.map (fun s -> exec db s) (split_script script)

(* -- convenience accessors ---------------------------------------------- *)

let find_table db name = Catalog.find_table db.catalog name

(** Render rows as an aligned text table (examples / debugging). *)
let render (schema : Schema.t) (rows : Tuple.t list) : string =
  let headers = Schema.column_names schema in
  let cells = List.map (fun r -> List.map Value.to_string (Tuple.to_list r)) rows in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (fun row ->
      List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) row)
    cells;
  let line cells =
    String.concat " | "
      (List.mapi
         (fun i c -> c ^ String.make (max 0 (widths.(i) - String.length c)) ' ')
         cells)
  in
  let sep = String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" ((line headers :: sep :: List.map line cells) @ [])
