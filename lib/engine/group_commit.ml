(** Group commit: concurrent sessions' COMMITs queue up and one leader
    drains the whole queue inside a single exclusive (writer-lock)
    critical section, amortizing the lock acquisition, the shared-cache
    invalidation, and the snapshot publication across every commit that
    arrived while the previous holder was busy.

    The protocol is the classic leader/follower queue: a submitter
    enqueues its commit thunk; if nobody is leading it elects itself,
    takes the exclusive section once, and runs {e every} queued job
    (including those that raced in while it waited for the lock).
    Followers block until their job is marked done and re-elect
    themselves if the leader exits before reaching them.  Per-job
    exceptions (e.g. "no transaction in progress") are caught by the
    leader and re-raised on the submitting session's thread. *)

type stats = {
  mutable batches : int; (* exclusive sections taken *)
  mutable committed : int; (* jobs drained across all batches *)
  mutable max_batch : int; (* largest single drain *)
}

type job = {
  action : unit -> unit;
  mutable done_ : bool;
  mutable err : exn option;
  mutable batch : int; (* size of the drain this job rode in *)
}

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  mutable queue : job list; (* newest first *)
  mutable leading : bool;
  stats : stats;
}

let create () =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    queue = [];
    leading = false;
    stats = { batches = 0; committed = 0; max_batch = 0 };
  }

(** [XNFDB_GROUP_COMMIT]: group commit (default on).  [0] routes every
    COMMIT through the writer lock individually, exactly the pre-group
    behavior. *)
let enabled () =
  match Sys.getenv_opt "XNFDB_GROUP_COMMIT" with
  | Some "0" | Some "false" | Some "off" -> false
  | _ -> true

let stats t = (t.stats.batches, t.stats.committed, t.stats.max_batch)

(** Submit [action] (one session's commit work) and block until it has
    run inside an exclusive section.  [exclusive f] must run [f] while
    holding the process writer lock (and may bundle shared-cache
    invalidation around it).  Returns the batch size the job was drained
    with; re-raises the job's own exception, if any. *)
let submit t ~exclusive action =
  Mutex.lock t.mu;
  let j = { action; done_ = false; err = None; batch = 0 } in
  t.queue <- j :: t.queue;
  let rec wait_done () =
    if j.done_ then ()
    else if not t.leading then begin
      t.leading <- true;
      Mutex.unlock t.mu;
      (* Everything that queued while we (or the writer ahead of us)
         held things up is drained in one critical section. *)
      (try
         exclusive (fun () ->
             Mutex.lock t.mu;
             let batch = List.rev t.queue in
             t.queue <- [];
             let n = List.length batch in
             t.stats.batches <- t.stats.batches + 1;
             t.stats.committed <- t.stats.committed + n;
             if n > t.stats.max_batch then t.stats.max_batch <- n;
             Mutex.unlock t.mu;
             List.iter
               (fun j ->
                 j.batch <- n;
                 try j.action () with e -> j.err <- Some e)
               batch;
             Mutex.lock t.mu;
             List.iter (fun j -> j.done_ <- true) batch;
             Condition.broadcast t.cond;
             Mutex.unlock t.mu)
       with e ->
         (* [exclusive] itself failed before running the batch; step
            down so waiters re-elect, then surface the failure here. *)
         Mutex.lock t.mu;
         t.leading <- false;
         Condition.broadcast t.cond;
         Mutex.unlock t.mu;
         raise e);
      Mutex.lock t.mu;
      t.leading <- false;
      (* jobs enqueued after our drain need a new leader *)
      Condition.broadcast t.cond;
      wait_done ()
    end
    else begin
      Condition.wait t.cond t.mu;
      wait_done ()
    end
  in
  wait_done ();
  let err = j.err and batch = j.batch in
  Mutex.unlock t.mu;
  (match err with Some e -> raise e | None -> ());
  batch
