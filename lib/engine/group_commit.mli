(** Group commit: a leader/follower queue that drains every concurrently
    submitted commit inside one exclusive (writer-lock) critical
    section, amortizing lock acquisition, cache invalidation, and
    snapshot publication across the batch. *)

type t

val create : unit -> t

val enabled : unit -> bool
(** [XNFDB_GROUP_COMMIT] knob (default on). *)

val submit : t -> exclusive:((unit -> unit) -> unit) -> (unit -> unit) -> int
(** [submit t ~exclusive action] queues [action] and blocks until a
    leader has run it inside [exclusive] (which must hold the process
    writer lock around its argument).  Returns the batch size the job
    was drained with; re-raises the job's own exception. *)

val stats : t -> int * int * int
(** [(batches, jobs_committed, max_batch)] since creation. *)
