(** The database engine facade: parse → QGM → rewrite → plan → execute,
    plus DDL/DML and transactions — the "integrated DBMS" of the paper
    (Sect. 3) that the XNF extension plugs into. *)

open Relcore
module Ast = Sqlkit.Ast
module Plan = Optimizer.Plan

type t

type result =
  | Rows of Schema.t * Tuple.t list
  | Affected of int
  | Done of string

val create : unit -> t
val catalog : t -> Catalog.t
val txn : t -> Txn.t

val atomically : t -> (unit -> 'a) -> 'a
(** Run [f] as one atomic transaction against this database. *)

(** {2 Query pipeline} *)

val compile_ast :
  ?rewrite:bool ->
  ?share:bool ->
  ?join_method:Optimizer.Planner.join_method ->
  t ->
  Ast.query ->
  Plan.compiled
(** [rewrite] and [share] are the benchmark ablation switches. *)

val compile_query :
  ?rewrite:bool ->
  ?share:bool ->
  ?join_method:Optimizer.Planner.join_method ->
  t ->
  string ->
  Plan.compiled

val query_batches :
  ?rewrite:bool -> ?share:bool -> ?ctx:Executor.Exec.ctx -> ?domains:int ->
  t -> string -> Schema.t * Batch.t list
(** Run a SELECT and return schema + result batches — the table queue
    itself, without flattening to a row list.  [domains > 1] drains the
    plan through the morsel-parallel executor (identical rows,
    multicore). *)

val query :
  ?rewrite:bool -> ?share:bool -> ?ctx:Executor.Exec.ctx -> ?domains:int ->
  t -> string -> Schema.t * Tuple.t list

val query_rows :
  ?rewrite:bool -> ?share:bool -> ?ctx:Executor.Exec.ctx -> ?domains:int ->
  t -> string -> Tuple.t list

val explain : t -> string -> string
(** Rewritten QGM, rule firings and the chosen plan. *)

(** {2 Statements} *)

val component_dml_translator :
  (Catalog.t -> view:string -> component:string -> Ast.stmt -> Ast.stmt option)
  option
  ref
(** Hook translating DML on a [view.component] target into DML on the
    base table; registered by [Xnf.Updatability] at link time. *)

val exec_stmt : t -> Ast.stmt -> result
val exec : t -> string -> result

val split_script : string -> string list
(** Split a script on top-level ';' (string literals and [--] comments
    respected). *)

val exec_script : t -> string -> result list
(** Run a batch of ';'-separated statements. *)

val find_table : t -> string -> Base_table.t

val render : Schema.t -> Tuple.t list -> string
(** Aligned text table for display. *)
