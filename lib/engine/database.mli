(** The database engine facade: parse → QGM → rewrite → plan → execute,
    plus DDL/DML and transactions — the "integrated DBMS" of the paper
    (Sect. 3) that the XNF extension plugs into. *)

open Relcore
module Ast = Sqlkit.Ast
module Plan = Optimizer.Plan

type t

type result =
  | Rows of Schema.t * Tuple.t list
  | Affected of int
  | Done of string

val create : unit -> t

val session : t -> t
(** A session-scoped handle onto the same database: shares the catalog
    (tables, views, indexes, columnar tiers) but has its own transaction
    and its own prepared-plan/plugin caches — what each server
    connection gets.  DDL executed through one session invalidates only
    that session's plan caches; the server layer broadcasts the
    invalidation to its other sessions. *)

val catalog : t -> Catalog.t
val txn : t -> Txn.t

val atomically : t -> (unit -> 'a) -> 'a
(** Run [f] as one atomic transaction against this database. *)

(** {2 Caches}

    Two levels.  (1) A per-database {e prepared-plan cache}: normalized
    query text × ablation flags → compiled plan, so repeat queries skip
    parse → QGM → rewrite → join ordering ([XNFDB_PLAN_CACHE] knob,
    default on; invalidated by any DDL).  (2) The process-wide
    {!Executor.Result_cache} of materialized results, keyed by plan
    fingerprint × per-table version counters ([XNFDB_RESULT_CACHE_MB]
    budget; DML invalidates by version drift). *)

val plan_cache_enabled : unit -> bool

val normalize_query_text : string -> string
(** Whitespace-collapsed, trimmed cache-key form of query text (string
    literals kept verbatim). *)

val invalidate_plans : t -> unit
(** Drop every prepared plan and plugin-cached compilation (DDL hook). *)

val plugin_cache_find : t -> string -> exn option
val plugin_cache_store : t -> string -> exn -> unit
(** Compiled-object cache slot for layers above the engine (the XNF
    compiler); cleared together with the plan cache on DDL, and counted
    in the same plan hit/miss statistics.  Callers namespace their keys
    and match their own exception constructor. *)

type cache_stats = {
  plan_hits : int;
  plan_misses : int;
  plan_entries : int; (* prepared plans + plugin-cached compilations *)
  result_hits : int;
  result_misses : int;
  result_evictions : int;
  result_entries : int;
  result_bytes : int;
}

val cache_stats : t -> cache_stats
(** Plan-cache counters are per-database; result-cache counters are the
    process-wide {!Executor.Result_cache.stats}. *)

(** {2 Query pipeline} *)

val compile_ast :
  ?rewrite:bool ->
  ?share:bool ->
  ?join_method:Optimizer.Planner.join_method ->
  t ->
  Ast.query ->
  Plan.compiled
(** [rewrite] and [share] are the benchmark ablation switches. *)

val compile_query :
  ?rewrite:bool ->
  ?share:bool ->
  ?join_method:Optimizer.Planner.join_method ->
  ?cache:bool ->
  t ->
  string ->
  Plan.compiled
(** Goes through the prepared-plan cache; [cache] (default: the
    [XNFDB_PLAN_CACHE] knob) bypasses it when [false]. *)

val query_batches :
  ?rewrite:bool -> ?share:bool -> ?ctx:Executor.Exec.ctx -> ?domains:int ->
  ?cache:bool -> t -> string -> Schema.t * Batch.t list
(** Run a SELECT and return schema + result batches — the table queue
    itself, without flattening to a row list.  [domains > 1] drains the
    plan through the morsel-parallel executor (identical rows,
    multicore). *)

val query :
  ?rewrite:bool -> ?share:bool -> ?ctx:Executor.Exec.ctx -> ?domains:int ->
  ?cache:bool -> t -> string -> Schema.t * Tuple.t list

val query_rows :
  ?rewrite:bool -> ?share:bool -> ?ctx:Executor.Exec.ctx -> ?domains:int ->
  ?cache:bool -> t -> string -> Tuple.t list

val explain : t -> string -> string
(** Rewritten QGM, rule firings, the chosen plan, and per-statement
    cache/colstore/join-filter counters (deltas over this statement's
    window, not process totals). *)

val explain_analyze : ?domains:int -> t -> string -> string
(** Compile (through the prepared-plan cache), execute with
    per-operator attribution armed, and report estimated vs actual rows,
    inclusive wall time and q-error for every operator — flagging the
    worst estimator — plus this statement's counter deltas.
    [domains > 1] profiles the morsel-parallel executor. *)

val mark_statement : t -> unit
(** Open a new per-statement counter window (snapshot the monotone
    cache/colstore/join-filter counters).  [explain]/[explain_analyze]
    call it themselves; layers with their own front ends (the XNF
    compiler) call it before rendering counter deltas. *)

val counter_sections : t -> string
(** Render the current statement window's cache/colstore/join-filter
    sections (deltas since {!mark_statement}; entry counts and byte
    totals are gauges). *)

(** {2 Statements} *)

val component_dml_translator :
  (Catalog.t -> view:string -> component:string -> Ast.stmt -> Ast.stmt option)
  option
  ref
(** Hook translating DML on a [view.component] target into DML on the
    base table; registered by [Xnf.Updatability] at link time. *)

val exec_stmt : t -> Ast.stmt -> result

val exec : ?domains:int -> t -> string -> result
(** Execute one statement given as text.  [EXPLAIN <query>] and
    [EXPLAIN ANALYZE <query>] prefixes are peeled here (front-end
    affordance, not grammar); [domains] selects the executor that
    EXPLAIN ANALYZE profiles. *)

val split_script : string -> string list
(** Split a script on top-level ';' (string literals and [--] comments
    respected). *)

val exec_script : t -> string -> result list
(** Run a batch of ';'-separated statements. *)

val find_table : t -> string -> Base_table.t

val render : Schema.t -> Tuple.t list -> string
(** Aligned text table for display. *)
