(** Transactions over the storage layer: an in-memory undo log.

    The paper keeps Starburst's transaction and recovery components
    "totally unchanged" underneath XNF; this module is that substrate
    for our engine.  It guards SQL-level mutations (INSERT, UPDATE,
    DELETE) and makes CO-cache write-back atomic
    (see {!Cocache.Update.flush_atomic}). *)

open Relcore

type undo =
  | U_insert of Base_table.t * Heap.rid (* undo: delete the row *)
  | U_update of Base_table.t * Heap.rid * Tuple.t (* undo: restore old row *)
  | U_delete of Base_table.t * Tuple.t (* undo: reinsert the row *)

type t = {
  mutable log : undo list;
  mutable active : bool;
  mutable touched : Base_table.t list; (* tables mutated by the open txn *)
  mutable delta_marks : (Base_table.t * int) list;
      (* per-table delta-log position just before the txn's first write
         there, so ROLLBACK can discard the txn's published deltas *)
}

let create () = { log = []; active = false; touched = []; delta_marks = [] }

let is_active t = t.active

let begin_txn t =
  if t.active then Errors.execution_error "transaction already in progress";
  t.active <- true;
  t.log <- [];
  t.touched <- [];
  t.delta_marks <- []

let table_of = function
  | U_insert (table, _) | U_update (table, _, _) | U_delete (table, _) -> table

(* Delta-log entries the mutation now being recorded already appended,
   so the pre-write mark can be reconstructed after the fact. *)
let delta_cost = function
  | U_insert _ | U_delete _ -> 1
  | U_update _ -> 2 (* delete + insert *)

(** Record an undo entry (no-op outside a transaction). *)
let record t undo =
  if t.active then begin
    t.log <- undo :: t.log;
    let table = table_of undo in
    if not (List.memq table t.touched) then begin
      t.touched <- table :: t.touched;
      t.delta_marks <-
        (table, Base_table.delta_mark table - delta_cost undo) :: t.delta_marks
    end
  end

(* Advance the version of every table the txn wrote.  The individual
   mutations already bumped versions (monotonically, so an aborted txn's
   in-flight versions can never be reused), but bumping again at the
   boundary makes commit and rollback themselves invalidation points:
   no version-keyed cache entry filled while the txn was open survives
   past its end.  Bump and publish run in one [Snapshot.bump_and_publish]
   critical section, so a concurrent snapshot pin — or an IVM
   version-vector capture — sees either all of this txn's tables at
   their new versions or none, never a torn cut. *)
let bump_touched t =
  Snapshot.bump_and_publish t.touched;
  t.touched <- [];
  t.delta_marks <- []

(* COMMIT publishes the consolidated delta simply by leaving the logged
   entries in place for [Base_table.deltas_since] readers. *)
let commit t =
  if not t.active then Errors.execution_error "no transaction in progress";
  t.active <- false;
  t.log <- [];
  bump_touched t

let rollback t =
  if not t.active then Errors.execution_error "no transaction in progress";
  let log = t.log in
  let marks = t.delta_marks in
  t.active <- false;
  t.log <- [];
  List.iter
    (fun undo ->
      match undo with
      | U_insert (table, rid) -> Base_table.delete table rid
      | U_update (table, rid, old_row) -> Base_table.update table rid old_row
      | U_delete (table, row) -> ignore (Base_table.insert table row))
    log;
  (* The undo ops above logged compensating deltas, so content-wise the
     log is already net-zero for this txn; rewinding to the pre-txn mark
     discards both halves.  Pre-txn snapshots stay maintainable, while
     snapshots taken inside the txn (a reader that cached uncommitted
     state) land in the rewind hole and are refused by [deltas_since]. *)
  List.iter (fun (table, mark) -> Base_table.delta_rewind table mark) marks;
  bump_touched t

(** Run [f] atomically: begin, commit on success, roll back on any
    exception (which is re-raised). *)
let atomically t f =
  begin_txn t;
  match f () with
  | result ->
    commit t;
    result
  | exception e ->
    rollback t;
    raise e
