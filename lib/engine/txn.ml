(** Transactions over the storage layer: an in-memory undo log.

    The paper keeps Starburst's transaction and recovery components
    "totally unchanged" underneath XNF; this module is that substrate
    for our engine.  It guards SQL-level mutations (INSERT, UPDATE,
    DELETE) and makes CO-cache write-back atomic
    (see {!Cocache.Update.flush_atomic}). *)

open Relcore

type undo =
  | U_insert of Base_table.t * Heap.rid (* undo: delete the row *)
  | U_update of Base_table.t * Heap.rid * Tuple.t (* undo: restore old row *)
  | U_delete of Base_table.t * Tuple.t (* undo: reinsert the row *)

type t = {
  mutable log : undo list;
  mutable active : bool;
  mutable touched : Base_table.t list; (* tables mutated by the open txn *)
}

let create () = { log = []; active = false; touched = [] }

let is_active t = t.active

let begin_txn t =
  if t.active then Errors.execution_error "transaction already in progress";
  t.active <- true;
  t.log <- [];
  t.touched <- []

let table_of = function
  | U_insert (table, _) | U_update (table, _, _) | U_delete (table, _) -> table

(** Record an undo entry (no-op outside a transaction). *)
let record t undo =
  if t.active then begin
    t.log <- undo :: t.log;
    let table = table_of undo in
    if not (List.memq table t.touched) then t.touched <- table :: t.touched
  end

(* Advance the version of every table the txn wrote.  The individual
   mutations already bumped versions (monotonically, so an aborted txn's
   in-flight versions can never be reused), but bumping again at the
   boundary makes commit and rollback themselves invalidation points:
   no version-keyed cache entry filled while the txn was open survives
   past its end. *)
let bump_touched t =
  List.iter Base_table.bump_version t.touched;
  t.touched <- []

let commit t =
  if not t.active then Errors.execution_error "no transaction in progress";
  t.active <- false;
  t.log <- [];
  bump_touched t

let rollback t =
  if not t.active then Errors.execution_error "no transaction in progress";
  let log = t.log in
  t.active <- false;
  t.log <- [];
  List.iter
    (fun undo ->
      match undo with
      | U_insert (table, rid) -> Base_table.delete table rid
      | U_update (table, rid, old_row) -> Base_table.update table rid old_row
      | U_delete (table, row) -> ignore (Base_table.insert table row))
    log;
  bump_touched t

(** Run [f] atomically: begin, commit on success, roll back on any
    exception (which is re-raised). *)
let atomically t f =
  begin_txn t;
  match f () with
  | result ->
    commit t;
    result
  | exception e ->
    rollback t;
    raise e
