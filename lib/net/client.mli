(** Synchronous client for the xnfdb wire protocol — used by the
    benchmarks, the tests, and the CLI's [--connect] mode.  One request
    in flight per connection; streamed responses are reassembled. *)

open Relcore
module H = Xnf.Hetstream

exception Server_error of { kind : string; msg : string }
(** An error frame from the server (execution errors, protocol
    violations, malformed frames). *)

type t

val connect : ?client_name:string -> Unix.sockaddr -> t
(** Connect and complete the Hello handshake. *)

val session_id : t -> int

val query : t -> string -> Schema.t * Tuple.t list
(** Run a SELECT; rows reassembled from the streamed batch frames. *)

val query_rows : t -> string -> Tuple.t list

val query_analyze : t -> string -> string
(** EXPLAIN ANALYZE over the wire: the server executes the query under
    an instrumented context and replies with the per-operator report. *)

val extract : ?chunk:int -> t -> string -> H.t
(** Extract a CO stream ([text] is XNF query text or a view name).
    [chunk] is the ship quantum in stream items per frame: unset =
    server default, [1] = tuple-at-a-time. *)

val extract_analyze : t -> string -> string
(** Instrumented extraction: per-operator report for an XNF query or
    view instead of a stream. *)

type exec_result =
  | Rows of Schema.t * Tuple.t list
  | Affected of int
  | Done of string

val exec : t -> string -> exec_result
(** One statement: DML / DDL / BEGIN / COMMIT / ROLLBACK (SELECT comes
    back as [Rows]). *)

val stats : t -> string
(** The server's EXPLAIN-style STATS block. *)

val close : t -> unit
(** Polite goodbye (Bye / Bye_ok), then close. *)

val abort : t -> unit
(** Slam the socket shut with no goodbye — crash simulation. *)

(** {2 Wire-level accounting and raw IO} (bench + hardening tests) *)

val bytes_in : t -> int
val bytes_out : t -> int
val frames_in : t -> int
val frames_out : t -> int

val send_raw : t -> string -> unit
(** Ship arbitrary pre-framed bytes (malformed-frame tests). *)

val recv_any : t -> Wire.response
(** Read one response frame. *)
