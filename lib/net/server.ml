(** The xnfdb socket daemon: many client sessions multiplexed onto one
    database and the shared {!Relcore.Pool} worker domains.

    One event-loop thread owns every socket: it accepts connections,
    reads and parses frames, and flushes response bytes.  Request
    {e execution} happens on pool workers — the loop hands a decoded
    frame to {!Relcore.Pool.launch} and moves on.  Workers never touch a
    socket: they push fully-encoded response frames into the session's
    bounded {!Relcore.Chan} outbox, so a slow client stalls (only) the
    worker serving it once the outbox fills — that stall {e is} the
    backpressure — while the loop keeps serving everyone else.

    Sessions share the catalog (tables, columnar tiers, result cache,
    IVM state) but each gets its own {!Engine.Database.session}: open
    transaction and prepared plans are per-connection.  Writes take a
    process-wide writer lock (statement granularity — MVCC snapshots are
    a ROADMAP item); queries and extractions share a reader lock.

    A malformed frame earns an error frame and closes that session; the
    daemon survives.  {!stop} (wired to SIGINT by the CLI) drains
    in-flight requests, commits nothing — open transactions are rolled
    back — and can release every table's columnar tier and spill file. *)

open Relcore
module Db = Engine.Database
module Txn = Engine.Txn
module H = Xnf.Hetstream

(* -- a small reader/writer lock ------------------------------------------ *)

(* Writer-preferring: arriving readers queue behind a waiting writer, so
   a steady query load cannot starve DML forever.  Handlers hold it only
   while computing a response (never while shipping bytes). *)
module Rwlock = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    mutable readers : int;
    mutable writer : bool;
    mutable waiting_w : int;
  }

  let create () =
    {
      m = Mutex.create ();
      c = Condition.create ();
      readers = 0;
      writer = false;
      waiting_w = 0;
    }

  let read t f =
    Mutex.lock t.m;
    while t.writer || t.waiting_w > 0 do
      Condition.wait t.c t.m
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.m;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.m;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.broadcast t.c;
        Mutex.unlock t.m)

  (* Non-blocking read acquisition: [Some (f ())] when no writer is
     active or waiting, [None] otherwise (the caller takes the
     snapshot path instead of queueing behind the writer). *)
  let try_read t f =
    Mutex.lock t.m;
    if t.writer || t.waiting_w > 0 then begin
      Mutex.unlock t.m;
      None
    end
    else begin
      t.readers <- t.readers + 1;
      Mutex.unlock t.m;
      Some
        (Fun.protect f ~finally:(fun () ->
             Mutex.lock t.m;
             t.readers <- t.readers - 1;
             if t.readers = 0 then Condition.broadcast t.c;
             Mutex.unlock t.m))
    end

  let write t f =
    Mutex.lock t.m;
    t.waiting_w <- t.waiting_w + 1;
    while t.writer || t.readers > 0 do
      Condition.wait t.c t.m
    done;
    t.waiting_w <- t.waiting_w - 1;
    t.writer <- true;
    Mutex.unlock t.m;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.m;
        t.writer <- false;
        Condition.broadcast t.c;
        Mutex.unlock t.m)
end

(* -- configuration ------------------------------------------------------- *)

type config = {
  addr : Unix.sockaddr;
  max_sessions : int;
  outbox_depth : int;  (** response frames buffered per session *)
  stream_chunk : int;  (** default stream items per [Stream_chunk] frame *)
  release_on_stop : bool;
      (** release every table's columnar tier (incl. spill files) on
          {!stop} — the daemon owns the data; off when embedding the
          server around a database the host process keeps using *)
}

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let default_addr () =
  match Option.bind (Sys.getenv_opt "XNFDB_PORT") int_of_string_opt with
  | Some port when port > 0 ->
    Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  | _ ->
    Unix.ADDR_UNIX
      (Option.value (Sys.getenv_opt "XNFDB_SOCKET") ~default:"/tmp/xnfdb.sock")

let default_config ?addr ?(release_on_stop = false) () =
  {
    addr = (match addr with Some a -> a | None -> default_addr ());
    max_sessions = getenv_int "XNFDB_MAX_SESSIONS" 1024;
    outbox_depth = getenv_int "XNFDB_OUTBOX_DEPTH" 16;
    stream_chunk = getenv_int "XNFDB_STREAM_CHUNK" 512;
    release_on_stop;
  }

(* -- sessions ------------------------------------------------------------ *)

type session = {
  sid : int;
  fd : Unix.file_descr;
  sdb : Db.t;
  mutable inbuf : string;  (* unparsed incoming bytes *)
  pending : string Queue.t;  (* complete payloads awaiting dispatch *)
  outbox : string Chan.t;  (* encoded response frames (worker → loop) *)
  mutable wbuf : string;  (* frame currently being written *)
  mutable woff : int;
  inflight : bool Atomic.t;  (* a request is running on the pool *)
  closing : bool Atomic.t;  (* graceful: flush outbox, then close *)
  mutable dead : bool;  (* peer gone: finalize as soon as possible *)
  (* per-session counters (racy reads from stats are benign) *)
  mutable s_frames_in : int;
  mutable s_frames_out : int;
  mutable s_bytes_in : int;
  mutable s_bytes_out : int;
  mutable s_requests : int;
  mutable s_snap_reads : int;  (* reads served lock-free off a snapshot *)
  mutable s_snap_falls : int;  (* snapshot attempts that fell back to the lock *)
  mutable s_gc_commits : int;  (* COMMITs routed through group commit *)
  mutable s_gc_max_batch : int;  (* largest drain one of them rode in *)
}

type t = {
  config : config;
  db : Db.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop_flag : bool Atomic.t;
  lock : Rwlock.t;
  sessions_mu : Mutex.t;  (* guards [sessions] (stats runs on workers) *)
  mutable sessions : session list;
  (* deferred teardown rollbacks in flight on pool workers; only the
     event-loop thread touches this list, and [serve] awaits every
     handle before it returns *)
  mutable cleanup : Pool.handle list;
  next_sid : int Atomic.t;
  (* process-wide counters *)
  c_opened : int Atomic.t;
  c_closed : int Atomic.t;
  c_peak : int Atomic.t;
  c_frames_in : int Atomic.t;
  c_frames_out : int Atomic.t;
  c_bytes_in : int Atomic.t;
  c_bytes_out : int Atomic.t;
  c_queries : int Atomic.t;
  c_extracts : int Atomic.t;
  c_stmts : int Atomic.t;
  c_errors : int Atomic.t;
  c_rejected : int Atomic.t;
  c_memo_hits : int Atomic.t;
  c_snap_reads : int Atomic.t;
  c_snap_fallbacks : int Atomic.t;
  (* group-commit queue shared by every session's COMMIT *)
  gc : Engine.Group_commit.t;
  (* snapshot gate: DDL must not run while a lock-free reader is
     mid-flight (it may drop the very tables the reader's frozen arrays
     and plans reference), and snapshot readers do not hold the rwlock.
     DDL flips [snap_blocked] (new snapshot reads fall back to the
     lock, where they queue behind the DDL writer) and waits for
     [snap_active] to drain. *)
  snap_mu : Mutex.t;
  snap_cond : Condition.t;
  mutable snap_active : int;
  mutable snap_blocked : bool;
  (* encoded-frame memo for extractions: the same view shipped twice
     costs one encoding.  Keyed by (text, chunk); cleared on any
     statement (DML, DDL, txn control) and on session teardown (the
     implicit rollback mutates shared tables).  Reads happen under the
     reader lock, clears under the writer lock or at teardown, so a
     memoized entry can never outlive the state it encoded. *)
  memo_mu : Mutex.t;
  frame_memo : (string * int, string list) Hashtbl.t;
}

let memo_cap = 64

let clear_memo t =
  Mutex.lock t.memo_mu;
  Hashtbl.reset t.frame_memo;
  Mutex.unlock t.memo_mu

type counters = {
  active_sessions : int;
  peak_sessions : int;
  sessions_opened : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  queries : int;
  extracts : int;
  stmts : int;
  errors : int;
  memo_hits : int;
  snap_reads : int;
  snap_fallbacks : int;
  gc_batches : int;
  gc_commits : int;
  gc_max_batch : int;
}

let sockaddr t = t.bound

let addr_to_string = function
  | Unix.ADDR_UNIX path -> "unix:" ^ path
  | Unix.ADDR_INET (host, port) ->
    Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr host) port

(* -- creation ------------------------------------------------------------ *)

let create ?config (db : Db.t) : t =
  let config =
    match config with Some c -> c | None -> default_config ()
  in
  (* a dying client must surface as EPIPE on write, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain =
    match config.addr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match config.addr with
  | Unix.ADDR_UNIX path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix.ADDR_INET _ ->
    Unix.setsockopt listen_fd Unix.SO_REUSEADDR true);
  Unix.bind listen_fd config.addr;
  Unix.listen listen_fd 128;
  Unix.set_nonblock listen_fd;
  let bound = Unix.getsockname listen_fd in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  (* boot epoch: whatever was loaded before the daemon started is the
     first committed state snapshot pins can see *)
  Snapshot.publish_catalog (Db.catalog db);
  {
    config;
    db;
    listen_fd;
    bound;
    wake_r;
    wake_w;
    stop_flag = Atomic.make false;
    lock = Rwlock.create ();
    sessions_mu = Mutex.create ();
    sessions = [];
    cleanup = [];
    next_sid = Atomic.make 1;
    c_opened = Atomic.make 0;
    c_closed = Atomic.make 0;
    c_peak = Atomic.make 0;
    c_frames_in = Atomic.make 0;
    c_frames_out = Atomic.make 0;
    c_bytes_in = Atomic.make 0;
    c_bytes_out = Atomic.make 0;
    c_queries = Atomic.make 0;
    c_extracts = Atomic.make 0;
    c_stmts = Atomic.make 0;
    c_errors = Atomic.make 0;
    c_rejected = Atomic.make 0;
    c_memo_hits = Atomic.make 0;
    c_snap_reads = Atomic.make 0;
    c_snap_fallbacks = Atomic.make 0;
    gc = Engine.Group_commit.create ();
    snap_mu = Mutex.create ();
    snap_cond = Condition.create ();
    snap_active = 0;
    snap_blocked = false;
    memo_mu = Mutex.create ();
    frame_memo = Hashtbl.create 16;
  }

(** Wake the event loop out of [select] (worker → loop, signal-safe). *)
let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EBADF), _, _) -> ()

let stop t =
  Atomic.set t.stop_flag true;
  wake t

(* -- observability ------------------------------------------------------- *)

let counters t : counters =
  let gc_batches, gc_commits, gc_max_batch = Engine.Group_commit.stats t.gc in
  {
    active_sessions = Atomic.get t.c_opened - Atomic.get t.c_closed;
    peak_sessions = Atomic.get t.c_peak;
    sessions_opened = Atomic.get t.c_opened;
    frames_in = Atomic.get t.c_frames_in;
    frames_out = Atomic.get t.c_frames_out;
    bytes_in = Atomic.get t.c_bytes_in;
    bytes_out = Atomic.get t.c_bytes_out;
    queries = Atomic.get t.c_queries;
    extracts = Atomic.get t.c_extracts;
    stmts = Atomic.get t.c_stmts;
    errors = Atomic.get t.c_errors;
    memo_hits = Atomic.get t.c_memo_hits;
    snap_reads = Atomic.get t.c_snap_reads;
    snap_fallbacks = Atomic.get t.c_snap_fallbacks;
    gc_batches;
    gc_commits;
    gc_max_batch;
  }

(** EXPLAIN-style text block: process-wide totals, then one line per
    live session — the payload of the STATS protocol command. *)
let stats_text t : string =
  let c = counters t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== server ==\n";
  Buffer.add_string buf
    (Printf.sprintf "  addr: %s%s\n" (addr_to_string t.bound)
       (if Atomic.get t.stop_flag then " (draining)" else ""));
  Buffer.add_string buf
    (Printf.sprintf "  sessions: %d active, %d opened, peak %d, max %d, %d rejected\n"
       c.active_sessions c.sessions_opened c.peak_sessions
       t.config.max_sessions (Atomic.get t.c_rejected));
  Buffer.add_string buf
    (Printf.sprintf "  frames: %d in / %d out, bytes: %d in / %d out\n"
       c.frames_in c.frames_out c.bytes_in c.bytes_out);
  Buffer.add_string buf
    (Printf.sprintf "  requests: %d queries, %d extracts, %d stmts, %d errors\n"
       c.queries c.extracts c.stmts c.errors);
  Buffer.add_string buf
    (Printf.sprintf "  frame memo: %d hits, %d entries\n" c.memo_hits
       (Mutex.protect t.memo_mu (fun () -> Hashtbl.length t.frame_memo)));
  Buffer.add_string buf
    (Printf.sprintf
       "  snapshot: %s, %d lock-free reads, %d fallbacks; epochs %d \
        pinned / %d released (%d stale); undo window %d bytes\n"
       (if Snapshot.enabled () then "on" else "off")
       c.snap_reads c.snap_fallbacks (Snapshot.pinned ())
       (Snapshot.released ()) (Snapshot.fallbacks ())
       (Snapshot.undo_bytes_all (Db.catalog t.db)));
  Buffer.add_string buf
    (Printf.sprintf
       "  group commit: %s, %d batches / %d commits, max batch %d\n"
       (if Engine.Group_commit.enabled () then "on" else "off")
       c.gc_batches c.gc_commits c.gc_max_batch);
  Buffer.add_string buf
    (Printf.sprintf "  outbox depth %d frames, stream chunk %d items\n"
       t.config.outbox_depth t.config.stream_chunk);
  Buffer.add_string buf "== sessions ==\n";
  Mutex.lock t.sessions_mu;
  let sessions = t.sessions in
  Mutex.unlock t.sessions_mu;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  [%d] %d reqs, frames %d/%d, bytes %d/%d, queue %d, snap \
            %d/%d, gc %d (max %d), txn %s%s\n"
           s.sid s.s_requests s.s_frames_in s.s_frames_out s.s_bytes_in
           s.s_bytes_out (Chan.length s.outbox) s.s_snap_reads s.s_snap_falls
           s.s_gc_commits s.s_gc_max_batch
           (if Txn.is_active (Db.txn s.sdb) then "open" else "none")
           (if Atomic.get s.inflight then ", busy" else "")))
    (List.sort (fun a b -> compare a.sid b.sid) sessions);
  Buffer.contents buf

(* -- snapshot read dispatch ---------------------------------------------- *)

let snap_enter t =
  Mutex.protect t.snap_mu (fun () ->
      if t.snap_blocked then false
      else begin
        t.snap_active <- t.snap_active + 1;
        true
      end)

let snap_exit t =
  Mutex.protect t.snap_mu (fun () ->
      t.snap_active <- t.snap_active - 1;
      if t.snap_active = 0 then Condition.broadcast t.snap_cond)

(* DDL barrier: refuse new lock-free readers, wait out those in flight.
   The caller holds the writer lock; snapshot readers never take it, so
   the wait always terminates (a reader falling back to the lock does so
   only after [snap_exit]). *)
let snap_exclude t f =
  Mutex.lock t.snap_mu;
  t.snap_blocked <- true;
  while t.snap_active > 0 do
    Condition.wait t.snap_cond t.snap_mu
  done;
  Mutex.unlock t.snap_mu;
  Fun.protect f
    ~finally:(fun () ->
      Mutex.protect t.snap_mu (fun () -> t.snap_blocked <- false))

(* Every table fully published?  Stable under the read lock (versions
   only move under the writer lock), so a clean check certifies the
   locked fast path sees no uncommitted rows from someone's open txn. *)
let catalog_clean t =
  List.for_all
    (fun tb -> Base_table.version tb = Base_table.committed_version tb)
    (Catalog.tables (Db.catalog t.db))

(** Dispatch one read (query or extraction).  [locked] is the
    historical read-locked path; [snap] runs against a pinned epoch with
    no lock held.  Knob off: exactly the old behavior.  Knob on: a free
    lock over a fully-committed catalog serves [locked] under a
    non-blocking read acquisition (result cache, frame memo and IVM all
    stay valid); a busy lock — or uncommitted writer state that the old
    path would have read dirty — serves committed pre-images lock-free;
    a stale undo window or pending DDL falls back to the blocking
    lock. *)
let serve_read t sess ~locked ~snap =
  (* a session inside its own transaction must read its own uncommitted
     writes — only the locked path can see them *)
  if (not (Snapshot.enabled ())) || Txn.is_active (Db.txn sess.sdb) then
    Rwlock.read t.lock locked
  else
    match
      Rwlock.try_read t.lock (fun () ->
          if catalog_clean t then Some (locked ()) else None)
    with
    | Some (Some frames) -> frames
    | Some None | None -> (
      let attempt =
        if not (snap_enter t) then None
        else
          Fun.protect
            ~finally:(fun () -> snap_exit t)
            (fun () ->
              let s = Snapshot.pin (Db.catalog t.db) in
              Fun.protect
                ~finally:(fun () -> Snapshot.release s)
                (fun () ->
                  match snap s with
                  | frames -> Some frames
                  | exception Snapshot.Stale -> None))
      in
      match attempt with
      | Some frames ->
        sess.s_snap_reads <- sess.s_snap_reads + 1;
        Atomic.incr t.c_snap_reads;
        frames
      | None ->
        sess.s_snap_falls <- sess.s_snap_falls + 1;
        Atomic.incr t.c_snap_fallbacks;
        Rwlock.read t.lock locked)

(* -- request execution (pool workers) ------------------------------------ *)

let chunked n items =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 tl
      else go acc (x :: cur) (k + 1) tl
  in
  go [] [] 0 items

(** DDL through one session must invalidate every session's prepared
    plans (they reference dropped/created objects).  Runs only while the
    exclusive writer lock is held, so no reader is mid-compilation. *)
let broadcast_invalidate t =
  Db.invalidate_plans t.db;
  Mutex.lock t.sessions_mu;
  let sessions = t.sessions in
  Mutex.unlock t.sessions_mu;
  List.iter (fun s -> Db.invalidate_plans s.sdb) sessions

let is_ddl sql =
  let sql = String.trim sql in
  let kw =
    match String.index_opt sql ' ' with
    | Some i -> String.sub sql 0 i
    | None -> sql
  in
  match String.lowercase_ascii kw with
  | "create" | "drop" -> true
  | _ -> false

let is_commit sql =
  match String.lowercase_ascii (String.trim sql) with
  | "commit" | "commit;" -> true
  | _ -> false

(** Compute the full response — a list of encoded frames — for one
    request.  Pure compute: no socket, no outbox; locks are released
    before a single byte ships. *)
let respond t (sess : session) (req : Wire.request) : string list =
  let encoded rs = List.map Wire.encode_response rs in
  match req with
  | Wire.Hello { client = _; version } ->
    if version <> Wire.version then
      encoded
        [
          Wire.Error
            {
              kind = "protocol";
              msg =
                Printf.sprintf "protocol version %d, server speaks %d" version
                  Wire.version;
            };
        ]
    else
      encoded
        [
          Wire.Hello_ok
            { server = "xnfdb"; version = Wire.version; session_id = sess.sid };
        ]
  | Wire.Query { sql; analyze } when analyze ->
    Atomic.incr t.c_queries;
    (* attribution owns its own executor ctx, so the lock-free snapshot
       path can't thread a pinned-epoch ctx through it — take the plain
       read lock instead *)
    Rwlock.read t.lock (fun () ->
        encoded [ Wire.Done (Db.explain_analyze sess.sdb sql) ])
  | Wire.Query { sql; analyze = _ } ->
    Atomic.incr t.c_queries;
    let run ctx =
      let schema, batches = Db.query_batches ?ctx sess.sdb sql in
      let total = ref 0 in
      let body =
        List.map
          (fun b ->
            let rows = Batch.list_to_rows [ b ] in
            total := !total + List.length rows;
            Wire.Row_batch rows)
          batches
      in
      encoded
        ((Wire.Row_header schema :: body) @ [ Wire.Row_end { rows = !total } ])
    in
    serve_read t sess
      ~locked:(fun () -> run None)
      ~snap:(fun s ->
        run
          (Some
             (Executor.Exec.make_ctx ~result_cache:false
                ~snapshot:(Snapshot.rows s) ())))
  | Wire.Extract { text; chunk = _; analyze = true } ->
    Atomic.incr t.c_extracts;
    (* never consults or fills the frame memo: the reply carries live
       timings, not reusable frames *)
    Rwlock.read t.lock (fun () ->
        let text =
          if Xnf.Xnf_parser.is_xnf_text text then text
          else Xnf.Xnf_compile.view_text sess.sdb text
        in
        encoded [ Wire.Done (Xnf.Xnf_compile.explain_analyze sess.sdb text) ])
  | Wire.Extract { text; chunk; analyze = _ } ->
    Atomic.incr t.c_extracts;
    let chunk = if chunk > 0 then chunk else t.config.stream_chunk in
    let key = (text, chunk) in
    let encode_stream stream =
      let items = stream.H.items in
      encoded
        (Wire.Stream_header stream.H.header
         :: List.map (fun c -> Wire.Stream_chunk c) (chunked chunk items)
        @ [ Wire.Stream_end { items = List.length items } ])
    in
    let locked () =
      let hit = Mutex.protect t.memo_mu (fun () -> Hashtbl.find_opt t.frame_memo key) in
      match hit with
      | Some frames ->
        Atomic.incr t.c_memo_hits;
        frames
      | None ->
        let stream =
          if Xnf.Xnf_parser.is_xnf_text text then
            Xnf.Xnf_compile.run sess.sdb text
          else Xnf.Xnf_compile.run_view sess.sdb text
        in
        let frames = encode_stream stream in
        Mutex.protect t.memo_mu (fun () ->
            if Hashtbl.length t.frame_memo >= memo_cap then
              Hashtbl.reset t.frame_memo;
            Hashtbl.replace t.frame_memo key frames);
        frames
    in
    (* the snapshot path never touches the frame memo: a concurrent
       commit clears it, and frames encoded at an older pinned epoch
       stored after that clear would outlive the state they encode *)
    let snap s =
      let ctx =
        Executor.Exec.make_ctx ~result_cache:false ~snapshot:(Snapshot.rows s)
          ()
      in
      let stream =
        if Xnf.Xnf_parser.is_xnf_text text then
          Xnf.Xnf_compile.run ~ctx sess.sdb text
        else Xnf.Xnf_compile.run_view ~ctx sess.sdb text
      in
      encode_stream stream
    in
    serve_read t sess ~locked ~snap
  | Wire.Stmt { sql } ->
    Atomic.incr t.c_stmts;
    let execute () =
      (* any statement may mutate shared state (DML, DDL, txn
         control, rollback) — drop memoized extraction frames *)
      clear_memo t;
      match Db.exec sess.sdb sql with
      | Db.Rows (schema, rows) ->
        encoded
          [
            Wire.Row_header schema;
            Wire.Row_batch rows;
            Wire.Row_end { rows = List.length rows };
          ]
      | Db.Affected n -> encoded [ Wire.Affected n ]
      | Db.Done msg ->
        if is_ddl sql then broadcast_invalidate t;
        encoded [ Wire.Done msg ]
    in
    if is_commit sql && Engine.Group_commit.enabled () then begin
      (* concurrent sessions' COMMITs drain in one exclusive section:
         one lock acquisition, one memo clear, one publication burst *)
      let frames = ref [] in
      let batch =
        Engine.Group_commit.submit t.gc
          ~exclusive:(fun f -> Rwlock.write t.lock f)
          (fun () -> frames := execute ())
      in
      sess.s_gc_commits <- sess.s_gc_commits + 1;
      if batch > sess.s_gc_max_batch then sess.s_gc_max_batch <- batch;
      !frames
    end
    else if is_ddl sql then
      (* DDL additionally waits out in-flight lock-free readers *)
      Rwlock.write t.lock (fun () -> snap_exclude t execute)
    else Rwlock.write t.lock execute
  | Wire.Stats -> encoded [ Wire.Stats_reply (stats_text t) ]
  | Wire.Bye ->
    Atomic.set sess.closing true;
    encoded [ Wire.Bye_ok ]

(** Run one request on a pool worker: decode, execute, push the encoded
    frames into the session outbox (blocking on a full outbox — the
    backpressure path).  Never raises: errors become error frames; a
    torn-down session surfaces as [Chan.Closed] and is simply dropped. *)
let handle_request t (sess : session) (payload : string) : unit =
  Fun.protect
    ~finally:(fun () ->
      Atomic.set sess.inflight false;
      wake t)
    (fun () ->
      sess.s_requests <- sess.s_requests + 1;
      (* wake per push, not merely per request: the loop may be parked
         in [select] without this fd in the write set (the outbox was
         empty when it built the sets), and a streamed response that
         fills the bounded outbox would otherwise deadlock with the
         loop until its timeout — per-frame latency, not throughput *)
      let push_frame f =
        Chan.push sess.outbox f;
        wake t
      in
      let push r = push_frame (Wire.encode_response r) in
      try
        match Wire.decode_request payload with
        | req -> (
          match respond t sess req with
          | frames -> List.iter push_frame frames
          | exception Errors.Db_error (k, msg) ->
            Atomic.incr t.c_errors;
            push (Wire.Error { kind = Errors.kind_to_string k; msg }))
        | exception Wire.Malformed msg ->
          (* answer, then hang up: a peer that frames garbage cannot be
             trusted to stay in sync *)
          Atomic.incr t.c_errors;
          push (Wire.Error { kind = "malformed"; msg });
          Atomic.set sess.closing true
      with
      | Chan.Closed -> ()
      | e ->
        Atomic.incr t.c_errors;
        (try
           push
             (Wire.Error { kind = "internal"; msg = Printexc.to_string e })
         with Chan.Closed -> ()))

(* -- the event loop ------------------------------------------------------ *)

let read_buf_len = 65536

(** Parse every complete frame out of [sess.inbuf] into [sess.pending].
    @raise Wire.Malformed on an out-of-range length prefix. *)
let rec extract_frames t sess =
  let s = sess.inbuf in
  let len = String.length s in
  if len >= 4 then begin
    let n = Int32.to_int (String.get_int32_be s 0) in
    if n < 1 || n > Wire.max_frame then
      raise
        (Wire.Malformed (Printf.sprintf "frame length %d out of range" n));
    if len >= 4 + n then begin
      Queue.add (String.sub s 4 n) sess.pending;
      sess.inbuf <- String.sub s (4 + n) (len - 4 - n);
      sess.s_frames_in <- sess.s_frames_in + 1;
      Atomic.incr t.c_frames_in;
      extract_frames t sess
    end
  end

let mark_dead sess =
  if not sess.dead then begin
    sess.dead <- true;
    (* unblock any worker mid-push; it sees [Chan.Closed] and abandons
       the rest of its response *)
    Chan.close sess.outbox
  end

let handle_readable t sess (buf : Bytes.t) =
  match Unix.read sess.fd buf 0 read_buf_len with
  | 0 -> mark_dead sess
  | n -> (
    sess.inbuf <- sess.inbuf ^ Bytes.sub_string buf 0 n;
    sess.s_bytes_in <- sess.s_bytes_in + n;
    ignore (Atomic.fetch_and_add t.c_bytes_in n);
    match extract_frames t sess with
    | () -> ()
    | exception Wire.Malformed msg ->
      (* a framing error cannot be answered in-band reliably, but we
         still try: error frame, then drain and close *)
      Atomic.incr t.c_errors;
      (try
         Chan.push sess.outbox
           (Wire.encode_response (Wire.Error { kind = "malformed"; msg }))
       with Chan.Closed -> ());
      Queue.clear sess.pending;
      Atomic.set sess.closing true)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> mark_dead sess

(** Move outbox frames through the socket without ever blocking. *)
let handle_writable t sess =
  let progress = ref true in
  while !progress && not sess.dead do
    progress := false;
    if sess.woff >= String.length sess.wbuf then (
      match Chan.try_pop sess.outbox with
      | Some f ->
        sess.wbuf <- f;
        sess.woff <- 0;
        sess.s_frames_out <- sess.s_frames_out + 1;
        Atomic.incr t.c_frames_out
      | None -> ());
    let remaining = String.length sess.wbuf - sess.woff in
    if remaining > 0 then begin
      match Unix.write_substring sess.fd sess.wbuf sess.woff remaining with
      | n ->
        sess.woff <- sess.woff + n;
        sess.s_bytes_out <- sess.s_bytes_out + n;
        ignore (Atomic.fetch_and_add t.c_bytes_out n);
        if n > 0 then progress := true
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> mark_dead sess
    end
  done

let wants_write sess =
  (not sess.dead)
  && (sess.woff < String.length sess.wbuf || Chan.length sess.outbox > 0)

(** A gracefully-closing session is finished once everything is flushed
    and no request is still running. *)
let close_ripe sess =
  Atomic.get sess.closing
  && (not (Atomic.get sess.inflight))
  && Queue.is_empty sess.pending
  && Chan.length sess.outbox = 0
  && sess.woff >= String.length sess.wbuf

let finalize t sess =
  mark_dead sess;
  (* no worker can be running this session here (inflight = false), so
     only other sessions' readers can race the undo — serialize behind
     the writer lock on a pool worker, never on the loop thread (a loop
     blocked on the lock could not drain the outbox a reader is stuck
     pushing into).  SIGINT commits nothing. *)
  if Txn.is_active (Db.txn sess.sdb) then
    t.cleanup <-
      Pool.launch ~n:1 (fun _ ->
          Rwlock.write t.lock (fun () ->
              if Txn.is_active (Db.txn sess.sdb) then
                Txn.rollback (Db.txn sess.sdb);
              (* the undo mutated shared tables — memoized frames are
                 stale *)
              clear_memo t))
      :: t.cleanup;
  (try Unix.close sess.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.sessions_mu;
  t.sessions <- List.filter (fun s -> s.sid <> sess.sid) t.sessions;
  Mutex.unlock t.sessions_mu;
  Atomic.incr t.c_closed

let accept_all t =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _peer ->
      if List.length t.sessions >= t.config.max_sessions then begin
        (* best-effort error frame, then refuse *)
        Atomic.incr t.c_rejected;
        (try
           let f =
             Wire.encode_response
               (Wire.Error { kind = "busy"; msg = "max sessions reached" })
           in
           ignore (Unix.write_substring fd f 0 (String.length f))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        (match t.bound with
        | Unix.ADDR_INET _ -> (
          try Unix.setsockopt fd Unix.TCP_NODELAY true
          with Unix.Unix_error _ -> ())
        | _ -> ());
        let sess =
          {
            sid = Atomic.fetch_and_add t.next_sid 1;
            fd;
            sdb = Db.session t.db;
            inbuf = "";
            pending = Queue.create ();
            outbox = Chan.create ~capacity:t.config.outbox_depth;
            wbuf = "";
            woff = 0;
            inflight = Atomic.make false;
            closing = Atomic.make false;
            dead = false;
            s_frames_in = 0;
            s_frames_out = 0;
            s_bytes_in = 0;
            s_bytes_out = 0;
            s_requests = 0;
            s_snap_reads = 0;
            s_snap_falls = 0;
            s_gc_commits = 0;
            s_gc_max_batch = 0;
          }
        in
        Mutex.lock t.sessions_mu;
        t.sessions <- sess :: t.sessions;
        let active = List.length t.sessions in
        Mutex.unlock t.sessions_mu;
        Atomic.incr t.c_opened;
        let rec bump () =
          let p = Atomic.get t.c_peak in
          if active > p && not (Atomic.compare_and_set t.c_peak p active) then
            bump ()
        in
        bump ()
      end
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let dispatch_ready t =
  List.iter
    (fun sess ->
      if
        (not sess.dead)
        && (not (Atomic.get sess.inflight))
        && (not (Atomic.get sess.closing))
        && not (Queue.is_empty sess.pending)
      then begin
        let payload = Queue.pop sess.pending in
        Atomic.set sess.inflight true;
        ignore (Pool.launch ~n:1 (fun _ -> handle_request t sess payload))
      end)
    t.sessions

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | n when n = 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  go ()

(** Run the daemon.  Blocks until {!stop}: then stops accepting, lets
    in-flight requests finish, flushes what can be flushed, rolls back
    every open transaction, and (per config) releases the columnar
    tiers and spill files of every table. *)
let serve t =
  (* warm the pool up front so the first burst of sessions is not
     serialized behind lazy worker spawning *)
  Pool.await (Pool.launch ~n:(Pool.default_domains ()) (fun _ -> ()));
  let rbuf = Bytes.create read_buf_len in
  let accepting = ref true in
  let stop_accepting () =
    if !accepting then begin
      accepting := false;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      match t.bound with
      | Unix.ADDR_UNIX path -> (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | _ -> ()
    end
  in
  let running () = (not (Atomic.get t.stop_flag)) || t.sessions <> [] in
  while running () do
    if Atomic.get t.stop_flag then begin
      stop_accepting ();
      (* drain: no new requests; close every session as soon as its
         in-flight work and outbox are done *)
      List.iter
        (fun s ->
          Queue.clear s.pending;
          Atomic.set s.closing true)
        t.sessions
    end;
    let rds =
      t.wake_r
      :: (if !accepting then [ t.listen_fd ] else [])
      @ List.filter_map
          (fun s -> if s.dead then None else Some s.fd)
          t.sessions
    in
    let wrs = List.filter_map (fun s -> if wants_write s then Some s.fd else None) t.sessions in
    (match Unix.select rds wrs [] 0.1 with
    | readable, writable, _ ->
      if List.mem t.wake_r readable then drain_wake t;
      if !accepting && List.mem t.listen_fd readable then accept_all t;
      List.iter
        (fun s ->
          if (not s.dead) && List.mem s.fd readable then
            handle_readable t s rbuf)
        t.sessions;
      List.iter
        (fun s -> if (not s.dead) && List.mem s.fd writable then handle_writable t s)
        t.sessions
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* opportunistic flush: frames may have landed in outboxes while we
       were away regardless of select's verdict *)
    List.iter (fun s -> if wants_write s then handle_writable t s) t.sessions;
    dispatch_ready t;
    (* reap *)
    let ripe =
      List.filter
        (fun s ->
          (s.dead && not (Atomic.get s.inflight)) || close_ripe s)
        t.sessions
    in
    List.iter (finalize t) ripe
  done;
  stop_accepting ();
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (* every deferred teardown rollback must land before we hand the
     database back (or release its storage) *)
  List.iter Pool.await t.cleanup;
  t.cleanup <- [];
  if t.config.release_on_stop then
    List.iter Base_table.release (Catalog.tables (Db.catalog t.db))
