(** The xnfdb wire protocol: length-prefixed binary frames.

    Frame = 4-byte big-endian payload length + payload; payload = one
    tag byte + body in {!Xnf.Hetstream}'s varint/value encoding.  Query
    and extraction responses are streamed — header frame, one frame per
    batch/chunk, end frame — so a slow client backpressures the server
    through its bounded outbox instead of forcing one giant blob. *)

open Relcore
module H = Xnf.Hetstream

val version : int

val max_frame : int
(** Upper bound on a payload length; longer prefixes are malformed. *)

exception Malformed of string
(** A frame that cannot be decoded.  Decoders never raise anything
    else on bad input — the daemon answers with an error frame and
    closes that session only. *)

type request =
  | Hello of { client : string; version : int }
  | Query of { sql : string; analyze : bool }
      (** [analyze] requests EXPLAIN ANALYZE: the server executes the
          query and replies with one [Done] frame carrying the
          per-operator attribution report instead of a row stream. *)
  | Extract of { text : string; chunk : int; analyze : bool }
      (** [text] is XNF query text or a view name; [chunk] is the number
          of stream items per [Stream_chunk] frame (0 = server default,
          1 = tuple-at-a-time).  [analyze] replies with one [Done]
          report frame instead of a stream. *)
  | Stmt of { sql : string }  (** DML / DDL / BEGIN / COMMIT / ROLLBACK *)
  | Stats
  | Bye

type response =
  | Hello_ok of { server : string; version : int; session_id : int }
  | Row_header of Schema.t
  | Row_batch of Tuple.t list
  | Row_end of { rows : int }
  | Stream_header of H.header
  | Stream_chunk of H.item list
  | Stream_end of { items : int }
  | Affected of int
  | Done of string
  | Error of { kind : string; msg : string }
  | Stats_reply of string
  | Bye_ok

val frame : string -> string
(** Prefix a payload with its 4-byte length. *)

val encode_request : request -> string
(** Full frame, length prefix included. *)

val encode_response : response -> string
(** Full frame, length prefix included. *)

val decode_request : string -> request
(** From a payload (no length prefix).  @raise Malformed *)

val decode_response : string -> response
(** From a payload (no length prefix).  @raise Malformed *)

(** {2 Blocking frame IO} — the client side's synchronous transport. *)

exception Connection_lost

val send_frame : Unix.file_descr -> string -> unit
val recv_payload : Unix.file_descr -> string
