(** The xnfdb wire protocol: length-prefixed binary frames.

    A frame is a 4-byte big-endian payload length followed by the
    payload; the payload's first byte is the frame tag, the rest is the
    body in {!Xnf.Hetstream}'s varint/value encoding — the same codec
    that serializes CO result streams, so a [Stream_chunk] frame's body
    is byte-identical to the corresponding slice of
    [Hetstream.serialize] output.  Responses to a query or an extraction
    are {e streamed}: a header frame, one frame per batch/chunk, then an
    end frame carrying the total — the paper's Sect. 5 bulk shipping,
    with the chunk size as the ship quantum (chunk 1 = the
    tuple-at-a-time strawman). *)

open Relcore
module H = Xnf.Hetstream

let version = 2

(** Frames larger than this are rejected as malformed before any
    allocation happens — a garbage length prefix must not OOM the
    daemon. *)
let max_frame = 64 * 1024 * 1024

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

type request =
  | Hello of { client : string; version : int }
  | Query of { sql : string; analyze : bool }
      (** [analyze] requests EXPLAIN ANALYZE: the server executes the
          query, discards the rows and replies with a single [Done]
          frame carrying the per-operator attribution report. *)
  | Extract of { text : string; chunk : int; analyze : bool }
      (** [text] is XNF query text or a view name; [chunk] is the number
          of stream items per [Stream_chunk] frame (0 = server default,
          1 = tuple-at-a-time).  [analyze] requests an instrumented
          extraction: the reply is one [Done] frame with the
          per-operator report instead of a stream. *)
  | Stmt of { sql : string }  (** DML / DDL / BEGIN / COMMIT / ROLLBACK *)
  | Stats
  | Bye

type response =
  | Hello_ok of { server : string; version : int; session_id : int }
  | Row_header of Schema.t
  | Row_batch of Tuple.t list
  | Row_end of { rows : int }
  | Stream_header of H.header
  | Stream_chunk of H.item list
  | Stream_end of { items : int }
  | Affected of int
  | Done of string
  | Error of { kind : string; msg : string }
  | Stats_reply of string
  | Bye_ok

(* -- encoding ------------------------------------------------------------ *)

(** Wrap a payload into a full frame (length prefix + payload). *)
let frame (payload : string) : string =
  let n = String.length payload in
  let b = Buffer.create (n + 4) in
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b payload;
  Buffer.contents b

let with_tag tag body =
  let b = Buffer.create 64 in
  Buffer.add_char b tag;
  body b;
  frame (Buffer.contents b)

let encode_request (r : request) : string =
  match r with
  | Hello { client; version } ->
    with_tag 'h' (fun b ->
        H.write_string b client;
        H.write_int b version)
  | Query { sql; analyze } ->
    with_tag 'q' (fun b ->
        H.write_string b sql;
        H.write_int b (if analyze then 1 else 0))
  | Extract { text; chunk; analyze } ->
    with_tag 'x' (fun b ->
        H.write_string b text;
        H.write_int b chunk;
        H.write_int b (if analyze then 1 else 0))
  | Stmt { sql } -> with_tag 's' (fun b -> H.write_string b sql)
  | Stats -> with_tag 'S' (fun _ -> ())
  | Bye -> with_tag 'b' (fun _ -> ())

let write_row b (t : Tuple.t) =
  H.write_int b (Array.length t);
  Array.iter (H.write_value b) t

let encode_response (r : response) : string =
  match r with
  | Hello_ok { server; version; session_id } ->
    with_tag 'H' (fun b ->
        H.write_string b server;
        H.write_int b version;
        H.write_int b session_id)
  | Row_header schema -> with_tag 'T' (fun b -> H.write_schema b schema)
  | Row_batch rows ->
    with_tag 'B' (fun b ->
        H.write_int b (List.length rows);
        List.iter (write_row b) rows)
  | Row_end { rows } -> with_tag 'E' (fun b -> H.write_int b rows)
  | Stream_header h -> with_tag 'r' (fun b -> H.write_header b h)
  | Stream_chunk items ->
    with_tag 'i' (fun b ->
        H.write_int b (List.length items);
        List.iter (H.write_item b) items)
  | Stream_end { items } -> with_tag 'z' (fun b -> H.write_int b items)
  | Affected n -> with_tag 'A' (fun b -> H.write_int b n)
  | Done msg -> with_tag 'D' (fun b -> H.write_string b msg)
  | Error { kind; msg } ->
    with_tag 'X' (fun b ->
        H.write_string b kind;
        H.write_string b msg)
  | Stats_reply text -> with_tag 'Y' (fun b -> H.write_string b text)
  | Bye_ok -> with_tag 'Z' (fun _ -> ())

(* -- decoding ------------------------------------------------------------ *)

(* Any slip in a malformed payload surfaces as an out-of-bounds read or
   a codec error deep in the Hetstream reader; [decoding] funnels every
   such failure into [Malformed] so one bad client frame can never take
   the daemon down. *)
let decoding (payload : string) (f : H.reader -> 'a) : 'a =
  let r = { H.data = payload; pos = 1 } in
  let v =
    try f r with
    | Malformed _ as e -> raise e
    | Errors.Db_error (_, msg) -> malformed "%s" msg
    | Invalid_argument _ | Failure _ -> malformed "truncated frame"
  in
  if r.H.pos <> String.length payload then
    malformed "%d trailing bytes in frame" (String.length payload - r.H.pos);
  v

let decode_request (payload : string) : request =
  if String.length payload = 0 then malformed "empty frame";
  match payload.[0] with
  | 'h' ->
    decoding payload (fun r ->
        let client = H.read_string r in
        let version = H.read_int r in
        Hello { client; version })
  | 'q' ->
    decoding payload (fun r ->
        let sql = H.read_string r in
        let analyze = H.read_int r <> 0 in
        Query { sql; analyze })
  | 'x' ->
    decoding payload (fun r ->
        let text = H.read_string r in
        let chunk = H.read_int r in
        let analyze = H.read_int r <> 0 in
        Extract { text; chunk; analyze })
  | 's' -> decoding payload (fun r -> Stmt { sql = H.read_string r })
  | 'S' -> decoding payload (fun _ -> Stats)
  | 'b' -> decoding payload (fun _ -> Bye)
  | c -> malformed "unknown request tag %C" c

let read_row r : Tuple.t =
  let n = H.read_int r in
  if n < 0 then malformed "negative row arity";
  Array.init n (fun _ -> H.read_value r)

let decode_response (payload : string) : response =
  if String.length payload = 0 then malformed "empty frame";
  match payload.[0] with
  | 'H' ->
    decoding payload (fun r ->
        let server = H.read_string r in
        let version = H.read_int r in
        let session_id = H.read_int r in
        Hello_ok { server; version; session_id })
  | 'T' -> decoding payload (fun r -> Row_header (H.read_schema r))
  | 'B' ->
    decoding payload (fun r ->
        let n = H.read_int r in
        if n < 0 then malformed "negative batch size";
        Row_batch (List.init n (fun _ -> read_row r)))
  | 'E' -> decoding payload (fun r -> Row_end { rows = H.read_int r })
  | 'r' -> decoding payload (fun r -> Stream_header (H.read_header r))
  | 'i' ->
    decoding payload (fun r ->
        let n = H.read_int r in
        if n < 0 then malformed "negative chunk size";
        Stream_chunk (List.init n (fun _ -> H.read_item r)))
  | 'z' -> decoding payload (fun r -> Stream_end { items = H.read_int r })
  | 'A' -> decoding payload (fun r -> Affected (H.read_int r))
  | 'D' -> decoding payload (fun r -> Done (H.read_string r))
  | 'X' ->
    decoding payload (fun r ->
        let kind = H.read_string r in
        let msg = H.read_string r in
        Error { kind; msg })
  | 'Y' -> decoding payload (fun r -> Stats_reply (H.read_string r))
  | 'Z' -> decoding payload (fun _ -> Bye_ok)
  | c -> malformed "unknown response tag %C" c

(* -- blocking frame IO (client side) ------------------------------------- *)

exception Connection_lost

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Connection_lost
    in
    write_all fd s (off + n) (len - n)
  end

let send_frame fd (framed : string) =
  write_all fd framed 0 (String.length framed)

let read_exactly fd n : string =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let k =
      try Unix.read fd buf !off (n - !off) with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Connection_lost
    in
    if k = 0 && !off < n then raise Connection_lost;
    off := !off + k
  done;
  Bytes.unsafe_to_string buf

(** Read one frame's payload (blocking); raises {!Connection_lost} on
    EOF. *)
let recv_payload fd : string =
  let hdr = read_exactly fd 4 in
  let n = Int32.to_int (String.get_int32_be hdr 0) in
  if n < 1 || n > max_frame then malformed "frame length %d out of range" n;
  read_exactly fd n
