(** Synchronous client for the xnfdb wire protocol — the library the
    benchmarks, tests, and the CLI's [--connect] mode use to talk to a
    daemon.  One request in flight per connection; responses are
    reassembled from their streamed frames. *)

open Relcore
module H = Xnf.Hetstream

exception
  Server_error of {
    kind : string;
    msg : string;
  }

let () =
  Printexc.register_printer (function
    | Server_error { kind; msg } ->
      Some (Printf.sprintf "Server_error(%s: %s)" kind msg)
    | _ -> None)

type t = {
  fd : Unix.file_descr;
  mutable session_id : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable closed : bool;
}

let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out
let frames_in t = t.frames_in
let frames_out t = t.frames_out
let session_id t = t.session_id

let send t (req : Wire.request) =
  let f = Wire.encode_request req in
  Wire.send_frame t.fd f;
  t.bytes_out <- t.bytes_out + String.length f;
  t.frames_out <- t.frames_out + 1

let recv t : Wire.response =
  let payload = Wire.recv_payload t.fd in
  t.bytes_in <- t.bytes_in + String.length payload + 4;
  t.frames_in <- t.frames_in + 1;
  Wire.decode_response payload

(** Receive, raising {!Server_error} if the server answered with an
    error frame. *)
let recv_ok t : Wire.response =
  match recv t with
  | Wire.Error { kind; msg } -> raise (Server_error { kind; msg })
  | r -> r

let protocol_error what got =
  raise
    (Server_error
       { kind = "client"; msg = Printf.sprintf "expected %s, got %s" what got })

let tag_of = function
  | Wire.Hello_ok _ -> "hello_ok"
  | Wire.Row_header _ -> "row_header"
  | Wire.Row_batch _ -> "row_batch"
  | Wire.Row_end _ -> "row_end"
  | Wire.Stream_header _ -> "stream_header"
  | Wire.Stream_chunk _ -> "stream_chunk"
  | Wire.Stream_end _ -> "stream_end"
  | Wire.Affected _ -> "affected"
  | Wire.Done _ -> "done"
  | Wire.Error _ -> "error"
  | Wire.Stats_reply _ -> "stats_reply"
  | Wire.Bye_ok -> "bye_ok"

let connect ?(client_name = "xnfdb-client") (addr : Unix.sockaddr) : t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain =
    match addr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> (
    try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | _ -> ());
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      fd;
      session_id = 0;
      bytes_in = 0;
      bytes_out = 0;
      frames_in = 0;
      frames_out = 0;
      closed = false;
    }
  in
  send t (Wire.Hello { client = client_name; version = Wire.version });
  (match recv_ok t with
  | Wire.Hello_ok { session_id; _ } -> t.session_id <- session_id
  | r -> protocol_error "hello_ok" (tag_of r));
  t

(** Collect a streamed row response (header / batches / end). *)
let collect_rows t : Schema.t * Tuple.t list =
  let schema =
    match recv_ok t with
    | Wire.Row_header s -> s
    | r -> protocol_error "row_header" (tag_of r)
  in
  let rec go acc =
    match recv_ok t with
    | Wire.Row_batch rows -> go (List.rev_append rows acc)
    | Wire.Row_end { rows } ->
      let all = List.rev acc in
      if List.length all <> rows then
        protocol_error
          (Printf.sprintf "%d rows" rows)
          (Printf.sprintf "%d rows" (List.length all));
      all
    | r -> protocol_error "row_batch/row_end" (tag_of r)
  in
  (schema, go [])

let query t (sql : string) : Schema.t * Tuple.t list =
  send t (Wire.Query { sql; analyze = false });
  collect_rows t

let query_rows t sql = snd (query t sql)

(** EXPLAIN ANALYZE over the wire: the server executes the query under
    an instrumented context and ships back the per-operator report. *)
let query_analyze t (sql : string) : string =
  send t (Wire.Query { sql; analyze = true });
  match recv_ok t with
  | Wire.Done report -> report
  | r -> protocol_error "done" (tag_of r)

(** Extract a CO stream ([text] is XNF query text or a view name),
    reassembled from its chunk frames.  [chunk] is the ship quantum in
    stream items: unset = server default, [1] = tuple-at-a-time. *)
let extract ?(chunk = 0) t (text : string) : H.t =
  send t (Wire.Extract { text; chunk; analyze = false });
  let header =
    match recv_ok t with
    | Wire.Stream_header h -> h
    | r -> protocol_error "stream_header" (tag_of r)
  in
  let rec go acc =
    match recv_ok t with
    | Wire.Stream_chunk items -> go (List.rev_append items acc)
    | Wire.Stream_end { items } ->
      let all = List.rev acc in
      if List.length all <> items then
        protocol_error
          (Printf.sprintf "%d items" items)
          (Printf.sprintf "%d items" (List.length all));
      all
    | r -> protocol_error "stream_chunk/stream_end" (tag_of r)
  in
  { H.header; items = go [] }

(** Instrumented extraction over the wire: the server runs the XNF
    query (or view) under an instrumented context and ships back the
    per-operator report instead of a stream. *)
let extract_analyze t (text : string) : string =
  send t (Wire.Extract { text; chunk = 0; analyze = true });
  match recv_ok t with
  | Wire.Done report -> report
  | r -> protocol_error "done" (tag_of r)

type exec_result =
  | Rows of Schema.t * Tuple.t list
  | Affected of int
  | Done of string

(** Execute one statement (DML / DDL / BEGIN / COMMIT / ROLLBACK; a
    SELECT also works and comes back as [Rows]). *)
let exec t (sql : string) : exec_result =
  send t (Wire.Stmt { sql });
  match recv_ok t with
  | Wire.Affected n -> Affected n
  | Wire.Done msg -> Done msg
  | Wire.Row_header schema ->
    let rec go acc =
      match recv_ok t with
      | Wire.Row_batch rows -> go (List.rev_append rows acc)
      | Wire.Row_end _ -> List.rev acc
      | r -> protocol_error "row_batch/row_end" (tag_of r)
    in
    Rows (schema, go [])
  | r -> protocol_error "affected/done/rows" (tag_of r)

let stats t : string =
  send t Wire.Stats;
  match recv_ok t with
  | Wire.Stats_reply text -> text
  | r -> protocol_error "stats_reply" (tag_of r)

(** Polite goodbye: Bye / Bye_ok, then close the socket. *)
let close t =
  if not t.closed then begin
    t.closed <- true;
    (try
       send t Wire.Bye;
       match recv t with
       | Wire.Bye_ok -> ()
       | _ -> ()
     with Wire.Connection_lost | Wire.Malformed _ | Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(** Slam the socket shut with no goodbye — the crash-of-one-client
    simulation the isolation tests use. *)
let abort t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(** Send a raw pre-framed byte string (malformed-frame tests). *)
let send_raw t (bytes : string) =
  Wire.send_frame t.fd bytes;
  t.bytes_out <- t.bytes_out + String.length bytes

(** Receive one raw response (malformed-frame tests). *)
let recv_any t : Wire.response = recv t
