(** The xnfdb socket daemon: many client sessions multiplexed onto one
    database and the shared {!Relcore.Pool} worker domains.

    One event-loop thread owns every socket (accept / frame parse /
    flush); request execution runs on pool workers, which push encoded
    response frames into bounded per-session {!Relcore.Chan} outboxes —
    a full outbox stalls (only) the worker serving that client, which is
    the backpressure.  Sessions share the catalog, result cache, and IVM
    state but carry their own transaction and prepared plans
    ({!Engine.Database.session}).  Writes serialize behind a
    process-wide writer lock at statement granularity; queries and
    extractions share a reader lock.

    Malformed frames earn an error frame and close that session only.
    {!stop} drains in-flight requests, rolls back every open transaction
    (commits nothing), and per config releases each table's columnar
    tier and spill file via {!Relcore.Base_table.release}. *)

type config = {
  addr : Unix.sockaddr;
  max_sessions : int;  (** [XNFDB_MAX_SESSIONS], default 1024 *)
  outbox_depth : int;
      (** response frames buffered per session before the serving worker
          blocks; [XNFDB_OUTBOX_DEPTH], default 16 *)
  stream_chunk : int;
      (** default stream items per chunk frame; [XNFDB_STREAM_CHUNK],
          default 512 *)
  release_on_stop : bool;
      (** release every table's columnar tier + spill file on {!stop} *)
}

val default_addr : unit -> Unix.sockaddr
(** [XNFDB_PORT] (TCP on loopback) if set, else [XNFDB_SOCKET]
    (default [/tmp/xnfdb.sock]). *)

val default_config : ?addr:Unix.sockaddr -> ?release_on_stop:bool -> unit -> config

type t

val create : ?config:config -> Engine.Database.t -> t
(** Bind and listen (the socket is live, connections queue); the loop
    itself starts with {!serve}. *)

val serve : t -> unit
(** Run the event loop; blocks until {!stop} completes the drain. *)

val stop : t -> unit
(** Signal-safe shutdown trigger (the CLI wires it to SIGINT). *)

val sockaddr : t -> Unix.sockaddr
(** The actually-bound address (resolves port 0 to the chosen port). *)

(** {2 Observability} *)

type counters = {
  active_sessions : int;
  peak_sessions : int;
  sessions_opened : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  queries : int;
  extracts : int;
  stmts : int;
  errors : int;
  memo_hits : int;
      (** extractions served from the encoded-frame memo (the same view
          shipped twice costs one encoding; any statement clears it) *)
}

val counters : t -> counters

val stats_text : t -> string
(** EXPLAIN-style block: process totals + one line per live session —
    the payload of the STATS protocol command. *)
