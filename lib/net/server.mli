(** The xnfdb socket daemon: many client sessions multiplexed onto one
    database and the shared {!Relcore.Pool} worker domains.

    One event-loop thread owns every socket (accept / frame parse /
    flush); request execution runs on pool workers, which push encoded
    response frames into bounded per-session {!Relcore.Chan} outboxes —
    a full outbox stalls (only) the worker serving that client, which is
    the backpressure.  Sessions share the catalog, result cache, and IVM
    state but carry their own transaction and prepared plans
    ({!Engine.Database.session}).  Writes serialize behind a
    process-wide writer lock at statement granularity, and concurrent
    COMMITs drain through one group-commit exclusive section
    ([XNFDB_GROUP_COMMIT]).  Reads prefer the lock: when it is free and
    every table is committed they take a non-blocking read acquisition;
    when a writer is busy — or an open transaction's uncommitted rows
    would be visible — they pin an MVCC-lite snapshot epoch and run
    lock-free over committed pre-images ([XNFDB_SNAPSHOT]), falling
    back to the blocking lock when the bounded undo window cannot
    answer.

    Malformed frames earn an error frame and close that session only.
    {!stop} drains in-flight requests, rolls back every open transaction
    (commits nothing), and per config releases each table's columnar
    tier and spill file via {!Relcore.Base_table.release}. *)

type config = {
  addr : Unix.sockaddr;
  max_sessions : int;  (** [XNFDB_MAX_SESSIONS], default 1024 *)
  outbox_depth : int;
      (** response frames buffered per session before the serving worker
          blocks; [XNFDB_OUTBOX_DEPTH], default 16 *)
  stream_chunk : int;
      (** default stream items per chunk frame; [XNFDB_STREAM_CHUNK],
          default 512 *)
  release_on_stop : bool;
      (** release every table's columnar tier + spill file on {!stop} *)
}

val default_addr : unit -> Unix.sockaddr
(** [XNFDB_PORT] (TCP on loopback) if set, else [XNFDB_SOCKET]
    (default [/tmp/xnfdb.sock]). *)

val default_config : ?addr:Unix.sockaddr -> ?release_on_stop:bool -> unit -> config

type t

val create : ?config:config -> Engine.Database.t -> t
(** Bind and listen (the socket is live, connections queue); the loop
    itself starts with {!serve}. *)

val serve : t -> unit
(** Run the event loop; blocks until {!stop} completes the drain. *)

val stop : t -> unit
(** Signal-safe shutdown trigger (the CLI wires it to SIGINT). *)

val sockaddr : t -> Unix.sockaddr
(** The actually-bound address (resolves port 0 to the chosen port). *)

(** {2 Observability} *)

type counters = {
  active_sessions : int;
  peak_sessions : int;
  sessions_opened : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  queries : int;
  extracts : int;
  stmts : int;
  errors : int;
  memo_hits : int;
      (** extractions served from the encoded-frame memo (the same view
          shipped twice costs one encoding; any statement clears it) *)
  snap_reads : int;
      (** reads served lock-free off a pinned snapshot epoch
          ([XNFDB_SNAPSHOT], default on) *)
  snap_fallbacks : int;
      (** snapshot attempts that fell back to the blocking reader lock
          (stale undo window or pending DDL) *)
  gc_batches : int;  (** group-commit exclusive sections taken *)
  gc_commits : int;  (** COMMITs drained across all batches *)
  gc_max_batch : int;  (** largest single drain ([XNFDB_GROUP_COMMIT]) *)
}

val counters : t -> counters

val stats_text : t -> string
(** EXPLAIN-style block: process totals + one line per live session —
    the payload of the STATS protocol command. *)
