(** Runtime values of the relational engine.

    SQL three-valued logic is handled at the predicate-evaluation layer;
    here [Null] is just a distinguished value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val is_null : t -> bool

val compare : t -> t -> int
(** Total order used for sorting and index organisation (not SQL
    comparison): Null < Bool < numerics (Int and Float mix) < Str.
    Int-vs-Float comparison is exact — no [float_of_int] rounding at
    magnitudes >= 2^53 — so the mixed numeric order is transitive. *)

val int_key_of_float : float -> int option
(** The int that carries this float's key under {!compare}/{!hash}, if
    one exists: integral floats in the native int range.  Floats outside
    that range compare equal to no int. *)

val equal : t -> t -> bool

val sql_eq : t -> t -> bool option
(** SQL equality: [None] (unknown) when either side is null. *)

val sql_compare : t -> t -> int option
(** SQL comparison: [None] when either side is null. *)

val hash : t -> int
(** Consistent with {!equal}: equal values (including [Int 3] vs
    [Float 3.0]) hash equal. *)

val to_string : t -> string

val to_literal : t -> string
(** SQL-literal rendering: strings quoted and escaped. *)

val pp : Format.formatter -> t -> unit

(** Checked projections; raise {!Errors.Db_error} on mismatch. *)

val as_int : t -> int
val as_float : t -> float
val as_string : t -> string
val as_bool : t -> bool
