(** A base table: schema + heap storage + secondary indexes + optional
    primary key. *)

type t = {
  name : string;
  tid : int; (* process-unique table id; names can collide across databases *)
  schema : Schema.t;
  heap : Heap.t;
  colstore : Colstore.t; (* columnar mirror, maintained on every DML *)
  mutable indexes : Index.t list;
  primary_key : int array option;
}

val create : ?primary_key:string list -> name:string -> Schema.t -> t
(** A primary key implies a unique index named ["<table>_pkey"]. *)

val name : t -> string

val tid : t -> int
(** Process-unique table id — the stable cache-key component (table
    names can collide across databases in one process). *)

val schema : t -> Schema.t
val cardinality : t -> int

val version : t -> int
(** The heap's monotonic mutation counter (see {!Heap.version});
    version-keyed caches compare it to detect any DML since fill. *)

val bump_version : t -> unit
(** Advance {!version} without changing contents (txn commit/rollback
    hook). *)

val committed_version : t -> int
(** Last published (committed) version — the snapshot boundary MVCC-lite
    readers pin (see {!Heap.committed_version}). *)

val mark_committed : t -> unit
(** Publish the current {!version} as committed (see
    {!Heap.mark_committed}; call through [Snapshot.publish] so the
    publication is atomic across tables). *)

val frozen_at : t -> int -> Tuple.t option array option
(** Consistent pre-image of the slot array as of version [v] (see
    {!Heap.frozen_at}); [None] when the undo window no longer reaches
    back to [v]. *)

val undo_bytes : t -> int
(** Approximate bytes retained by the delta log / undo window. *)

val deltas_since : t -> int -> (int * Heap.delta_op) list option
(** Row deltas logged after version [v] (see {!Heap.deltas_since});
    [None] once the bounded per-table delta log overflowed past [v]. *)

val delta_mark : t -> int
val delta_rewind : t -> int -> unit

val find_index : t -> string -> Index.t option

val index_on : t -> int array -> Index.t option
(** The index whose key is exactly the given column positions. *)

val create_index :
  t -> idx_name:string -> columns:string list -> unique:bool -> Index.t
(** Backfills from existing rows; raises on duplicate index name or, for
    unique indexes, on duplicate keys. *)

val insert : t -> Value.t array -> Heap.rid
(** Validates against the schema and every unique index before changing
    state. *)

val get : t -> Heap.rid -> Tuple.t option
val get_exn : t -> Heap.rid -> Tuple.t
val update : t -> Heap.rid -> Value.t array -> unit
val delete : t -> Heap.rid -> unit

val iter : (Heap.rid -> Tuple.t -> unit) -> t -> unit
val fold : ('a -> Heap.rid -> Tuple.t -> 'a) -> 'a -> t -> 'a
val scan : t -> unit -> (Heap.rid * Tuple.t) option

val scan_into :
  ?filter:(Tuple.t -> bool) ->
  t ->
  from:int ->
  Tuple.t array ->
  start:int ->
  max:int ->
  int * int
(** Batched scan into a caller-supplied row array (see
    {!Heap.scan_into}): returns [(next_slot, n_filled)].  [filter]
    drops failing rows before they reach the output array. *)

val slot_count : t -> int
(** Slots ever allocated — the domain morsel scans partition (live rows
    may be fewer; tombstones are skipped). *)

val iter_range : t -> lo:int -> hi:int -> (Tuple.t -> unit) -> int
(** Apply [f] to live tuples in slots [lo, hi); returns rows visited. *)

val to_list : t -> (Heap.rid * Tuple.t) list

val pk_lookup : t -> Tuple.t -> Heap.rid list
val truncate : t -> unit

val release : t -> unit
(** Release the columnar mirror's chunk arrays and spill file (DDL
    drop); idempotent.  The table must not be used afterwards. *)
