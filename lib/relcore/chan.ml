(** Bounded multi-producer single-consumer channel — the inter-domain
    table queue.

    This is the runtime realisation of Starburst's table queue: a
    bounded buffer of batches between a producing plan fragment and a
    consuming one, providing flow control (producers block when the
    consumer falls behind) and a clean end-of-stream protocol ([close]
    once every producer is done; [pop] returns [None] after the last
    element drains). *)

exception Closed

type 'a t = {
  ring : 'a option array;
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
  mutable closed : bool;
  m : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Chan.create: capacity must be positive";
  {
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    m = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let push t x =
  Mutex.lock t.m;
  while t.len = Array.length t.ring && not t.closed do
    Condition.wait t.not_full t.m
  done;
  if t.closed then begin
    Mutex.unlock t.m;
    raise Closed
  end;
  t.ring.((t.head + t.len) mod Array.length t.ring) <- Some x;
  t.len <- t.len + 1;
  Condition.signal t.not_empty;
  Mutex.unlock t.m

let pop t =
  Mutex.lock t.m;
  while t.len = 0 && not t.closed do
    Condition.wait t.not_empty t.m
  done;
  let r =
    if t.len = 0 then None (* closed and drained *)
    else begin
      let x = t.ring.(t.head) in
      t.ring.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.len <- t.len - 1;
      Condition.signal t.not_full;
      x
    end
  in
  Mutex.unlock t.m;
  r

let try_pop t =
  Mutex.lock t.m;
  let r =
    if t.len = 0 then None
    else begin
      let x = t.ring.(t.head) in
      t.ring.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.len <- t.len - 1;
      Condition.signal t.not_full;
      x
    end
  in
  Mutex.unlock t.m;
  r

let length t =
  Mutex.lock t.m;
  let n = t.len in
  Mutex.unlock t.m;
  n

let is_closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  (* wake blocked producers (they raise Closed) and the consumer (it
     drains the remainder, then sees None) *)
  Condition.broadcast t.not_full;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.m
