(** Hash index over a base table: key (sub-tuple of the indexed
    columns) to the rids holding that key.  Postings are growable int
    arrays; probing with {!iter} allocates nothing. *)

type posting = { mutable rids : Heap.rid array; mutable n : int }
(** Rids live in [rids.(0 .. n-1)], sorted ascending; [iter]/[lookup]
    present them descending.  The layout is a pure function of the row
    set (no insertion history), so snapshot readers can reproduce the
    probe order from a frozen slot array alone. *)

type t = {
  name : string;
  key_columns : int array; (* positions within the table schema *)
  unique : bool;
  entries : posting Tuple.Tbl.t;
}

val create : name:string -> key_columns:int array -> unique:bool -> t

val clear : t -> unit
(** Drop every posting. *)

val key_of : t -> Tuple.t -> Tuple.t

val iter : t -> Tuple.t -> (Heap.rid -> unit) -> unit
(** Apply to every rid under [key], descending rid, without allocating —
    the probe primitive for index joins. *)

val iter_postings : t -> (Tuple.t -> int -> Heap.rid -> unit) -> unit
(** [f key pos rid] over every posting entry, ascending rid within a key
    ([pos] is the position {!iter} walks in reverse) — lets delta
    maintenance snapshot the exact posting layout. *)

val lookup : t -> Tuple.t -> Heap.rid list
(** Descending-rid list (allocates; prefer {!iter} on hot paths). *)

val lookup_tuple : t -> Tuple.t -> Heap.rid list

val mem : t -> Tuple.t -> bool
(** Any rid under this key?  Allocation-free unique-violation probe. *)

val mem_tuple : t -> Tuple.t -> bool

val insert : t -> Heap.rid -> Tuple.t -> unit
(** Raises on unique violation. *)

val remove : t -> Heap.rid -> Tuple.t -> unit

val cardinality : t -> int
(** Number of distinct keys. *)
