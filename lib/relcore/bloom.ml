(* Blocked Bloom filter + exact range + exact small-set fast path.

   Layout: [nblocks] blocks of 64 bytes (512 bits) each, [nblocks] a
   power of two.  A key hashes once to pick its block and a second time
   to derive four 9-bit positions inside it, so every membership test
   touches one cache line.  ~12 bits/key keeps the false-positive rate
   around 1-2% at four probes.

   The small-set path stores up to [exact_cap] distinct keys verbatim;
   while it is live, [mem] is exact (no false positives), which is the
   common case for selective build sides.  Bloom bits are always set in
   parallel so overflowing — directly or via [union_into] — just drops
   the array and keeps the (already complete) bloom. *)

let enabled () =
  match Sys.getenv_opt "XNFDB_JOINFILTER" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

let block_bytes = 64
let block_bits = block_bytes * 8
let exact_cap = 64

(* Both multipliers must fit OCaml's 63-bit int literals. *)
let mix1 k =
  let h = k * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x9E3779B1 in
  (h lxor (h lsr 32)) land max_int

let mix2 k =
  let h = k * 0x3C79AC492BA7B653 in
  let h = h lxor (h lsr 33) in
  let h = h * 0x1C69B3F74AC4AE35 in
  (h lxor (h lsr 27)) land max_int

type t = {
  nblocks : int;  (* power of two *)
  bits : Bytes.t;  (* nblocks * block_bytes *)
  mutable nkeys : int;
  mutable lo : int;
  mutable hi : int;
  mutable exact : int array;  (* first [exact_n] entries, distinct *)
  mutable exact_n : int;  (* -1 once overflowed *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~expected =
  let expected = max 64 expected in
  (* ~12 bits per key, in whole 512-bit blocks *)
  let nblocks = next_pow2 ((expected * 12 / block_bits) + 1) in
  {
    nblocks;
    bits = Bytes.make (nblocks * block_bytes) '\000';
    nkeys = 0;
    lo = max_int;
    hi = min_int;
    exact = Array.make exact_cap 0;
    exact_n = 0;
  }

let nkeys t = t.nkeys
let is_exact t = t.exact_n >= 0
let range t = if t.nkeys = 0 then None else Some (t.lo, t.hi)

let set_bloom t k =
  let base = (mix1 k land (t.nblocks - 1)) * block_bytes in
  let h2 = mix2 k in
  for j = 0 to 3 do
    let b = (h2 lsr (9 * j)) land (block_bits - 1) in
    let byte = base + (b lsr 3) in
    Bytes.unsafe_set t.bits byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (b land 7))))
  done

let test_bloom t k =
  let base = (mix1 k land (t.nblocks - 1)) * block_bytes in
  let h2 = mix2 k in
  let rec go j =
    j > 3
    ||
    let b = (h2 lsr (9 * j)) land (block_bits - 1) in
    Char.code (Bytes.unsafe_get t.bits (base + (b lsr 3)))
    land (1 lsl (b land 7))
    <> 0
    && go (j + 1)
  in
  go 0

let exact_mem t k =
  let rec go i = i < t.exact_n && (Array.unsafe_get t.exact i = k || go (i + 1)) in
  go 0

let add t k =
  t.nkeys <- t.nkeys + 1;
  if k < t.lo then t.lo <- k;
  if k > t.hi then t.hi <- k;
  if t.exact_n >= 0 && not (exact_mem t k) then
    if t.exact_n < exact_cap then begin
      t.exact.(t.exact_n) <- k;
      t.exact_n <- t.exact_n + 1
    end
    else t.exact_n <- -1;
  set_bloom t k

let mem t k =
  t.nkeys > 0
  && k >= t.lo
  && k <= t.hi
  && (if t.exact_n >= 0 then exact_mem t k else test_bloom t k)

let union_into ~into src =
  if into.nblocks <> src.nblocks then
    invalid_arg "Bloom.union_into: mismatched geometry";
  if src.nkeys > 0 then begin
    if src.lo < into.lo then into.lo <- src.lo;
    if src.hi > into.hi then into.hi <- src.hi;
    into.nkeys <- into.nkeys + src.nkeys;
    (* merge exact sets while both are live; any overflow poisons *)
    (if src.exact_n < 0 then into.exact_n <- -1
     else
       let i = ref 0 in
       while into.exact_n >= 0 && !i < src.exact_n do
         let k = src.exact.(!i) in
         if not (exact_mem into k) then
           if into.exact_n < exact_cap then begin
             into.exact.(into.exact_n) <- k;
             into.exact_n <- into.exact_n + 1
           end
           else into.exact_n <- -1;
         incr i
       done);
    let n = Bytes.length into.bits in
    for i = 0 to n - 1 do
      Bytes.unsafe_set into.bits i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get into.bits i)
           lor Char.code (Bytes.unsafe_get src.bits i)))
    done
  end

(* ------------------------------------------------ adaptive disabling -- *)

let adaptive_sample = 2048
let drop_threshold = 0.75

(* --------------------------------------------- process-wide counters -- *)

type counters = {
  mutable filters_built : int;
  mutable chunks_skipped : int;
  mutable rows_skipped : int;
  mutable filters_dropped : int;
}

let totals =
  { filters_built = 0; chunks_skipped = 0; rows_skipped = 0; filters_dropped = 0 }

let add_totals ~built ~chunks ~rows ~dropped =
  totals.filters_built <- totals.filters_built + built;
  totals.chunks_skipped <- totals.chunks_skipped + chunks;
  totals.rows_skipped <- totals.rows_skipped + rows;
  totals.filters_dropped <- totals.filters_dropped + dropped
