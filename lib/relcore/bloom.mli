(** Build-side join filters for sideways information passing: a blocked
    Bloom filter over int keys (64-byte blocks in unboxed [Bytes]),
    an exact key range [lo, hi], and an exact small-key-set fast path.

    A filter is populated from the build side of a hash join and pushed
    into the probe scan.  [mem] answering [false] means the key is
    {e definitely} absent from the build side, so the probe row cannot
    join and may be skipped before materialization; [true] may be a
    false positive, which the hash-table lookup itself resolves —
    filtering is therefore output-preserving by construction.

    Two filters built with the same [~expected] have identical block
    geometry and can be OR-merged with {!union_into}, matching the
    per-morsel partial-table merge of the parallel build. *)

type t

val enabled : unit -> bool
(** The [XNFDB_JOINFILTER] knob (default on; "0"/"false"/"off"/"no"
    disable).  Read per call, so it can be flipped mid-process. *)

val create : expected:int -> t
(** An empty filter sized for [expected] distinct keys (~12 bits/key,
    rounded up to a power-of-two block count). *)

val add : t -> int -> unit

val mem : t -> int -> bool
(** [false] is definitive; [true] may be a false positive.  An empty
    filter answers [false] for every key. *)

val nkeys : t -> int
(** Number of [add]s folded in (across unions); 0 iff empty. *)

val range : t -> (int * int) option
(** Exact [lo, hi] over every added key; [None] when empty. *)

val is_exact : t -> bool
(** Whether the small-set fast path is still live, making [mem] exact
    (no false positives at all). *)

val union_into : into:t -> t -> unit
(** OR-merge [src] into [into].  Both must come from {!create} with the
    same [~expected] (identical geometry); raises [Invalid_argument]
    otherwise. *)

(** {1 Adaptive disabling} — shared constants so both executors agree. *)

val adaptive_sample : int
(** Probe rows to observe before judging a filter's usefulness. *)

val drop_threshold : float
(** Observed pass-rate above which the per-row test is disabled. *)

(** {1 Process-wide counters} (surfaced by [explain]) *)

type counters = {
  mutable filters_built : int;
  mutable chunks_skipped : int;  (** probe chunks zone-pruned by the key range *)
  mutable rows_skipped : int;  (** probe rows dropped before materialization *)
  mutable filters_dropped : int;  (** filters adaptively disabled at runtime *)
}

val totals : counters

val add_totals :
  built:int -> chunks:int -> rows:int -> dropped:int -> unit
