(** Shared domain pool: persistent worker domains behind parallel
    table-queue execution.  Sized by [XNFDB_DOMAINS] (default: physical
    cores); workers are spawned lazily and reused across queries. *)

val default_domains : unit -> int
(** [XNFDB_DOMAINS], or [Domain.recommended_domain_count ()]. *)

val in_worker : unit -> bool
(** Is the current domain a pool worker?  ({!run} from a worker executes
    inline, so nested parallelism cannot deadlock the pool.) *)

type handle

val launch : n:int -> (int -> unit) -> handle
(** Enqueue [n] tasks on pool workers and return immediately (the
    caller does not participate — e.g. it consumes a {!Chan} the tasks
    produce into). *)

val await : handle -> unit
(** Block until every task of the handle finished; re-raises the first
    task exception. *)

val run : domains:int -> (int -> unit) -> unit
(** [run ~domains f] executes [f 0 .. f (domains-1)] to completion, the
    caller running [f 0] itself.  Inline when [domains <= 1] or when
    already on a pool worker. *)

val for_morsels : domains:int -> morsels:int -> (int -> unit) -> unit
(** Dynamic (morsel-style) scheduling: participants pull indexes
    [0 .. morsels-1] from a shared counter; fast workers take more. *)
