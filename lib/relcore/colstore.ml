(** Columnar chunk mirror of the slotted heap.

    Each base table maintains, alongside the row heap, a column-major
    copy of the same slots: per-column unboxed arrays ([int array] /
    [float array] / [Bytes] for bools, dictionary codes for strings), a
    null bitmap per column, a live bitmap, and per-chunk zone maps
    (min/max, non-null count, live count).  The layout is positional —
    slot [rid] of the heap is row [rid] of every column, and chunk
    [rid / chunk_rows] owns it — so a chunk-ascending scan visits rows
    in exactly the heap-scan order and the row store stays a
    byte-identical fallback and equivalence oracle.

    Zone maps are widened on insert and only invalidated (never
    shrunk) on delete/update, so they are always conservative: pruning
    a chunk can only lose an opportunity, never a row.  All maintenance
    happens inside the same {!Base_table} mutations that bump
    {!Heap.version}, so every version-keyed cache (plan statistics,
    CO-view results) that snapshots zone-derived data is invalidated by
    the same counter. *)

(* ------------------------------------------------------------------ *)
(* Knob                                                                *)
(* ------------------------------------------------------------------ *)

(* XNFDB_COLSTORE gates *use* of the columnar path (executor scans, key
   extraction, planner statistics); maintenance is always on so the
   knob can be flipped mid-process and both paths stay coherent. *)
let enabled () =
  match Sys.getenv_opt "XNFDB_COLSTORE" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

let default_chunk_rows = 1024

let chunk_rows_env () =
  match Sys.getenv_opt "XNFDB_CHUNK_ROWS" with
  | Some s -> (try max 16 (int_of_string (String.trim s)) with _ -> default_chunk_rows)
  | None -> default_chunk_rows

(* ------------------------------------------------------------------ *)
(* Process-wide counters (surfaced by [explain])                       *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable chunks_scanned : int;
  mutable chunks_skipped : int;
  mutable rows_materialized : int;
}

let totals = { chunks_scanned = 0; chunks_skipped = 0; rows_materialized = 0 }

let add_totals ~scanned ~skipped ~materialized =
  totals.chunks_scanned <- totals.chunks_scanned + scanned;
  totals.chunks_skipped <- totals.chunks_skipped + skipped;
  totals.rows_materialized <- totals.rows_materialized + materialized

(* ------------------------------------------------------------------ *)
(* Bitmaps                                                             *)
(* ------------------------------------------------------------------ *)

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let bit_clear b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) land lnot (1 lsl (i land 7))))

let bitmap_bytes slots = (slots + 7) lsr 3

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(* ------------------------------------------------------------------ *)

type data =
  | D_int of int array (* Tint values; Tstr dictionary codes *)
  | D_float of float array
  | D_bool of Bytes.t

(* Per-column, per-chunk zone map.  [z_lo_*]/[z_hi_*] are meaningful
   only when [z_nonnull > 0]; the int pair serves Tint (values), Tstr
   (dictionary codes — numeric code order, sound for equality pruning
   only) and Tbool (0/1).  Float bounds follow [Float.compare] order,
   so a stored NaN drags [z_lo_f] down to NaN and keeps pruning sound.
   [z_tight] records whether the bounds are exact or merely
   conservative (false after a delete/update removed a value while the
   chunk stayed non-empty). *)
type zone = {
  mutable z_nonnull : int;
  mutable z_lo_i : int;
  mutable z_hi_i : int;
  mutable z_lo_f : float;
  mutable z_hi_f : float;
  mutable z_tight : bool;
}

type col = {
  dtype : Dtype.t;
  mutable data : data;
  mutable nulls : Bytes.t; (* bit set = NULL *)
  mutable zones : zone array; (* one per chunk *)
}

type t = {
  schema : Schema.t;
  chunk_rows : int;
  cols : col array;
  mutable live : Bytes.t; (* bit set = slot holds a live row *)
  mutable live_per_chunk : int array;
  mutable cap : int; (* allocated slots (a multiple of chunk_rows) *)
  mutable hi : int; (* slots ever used; mirrors Heap.capacity *)
  dict : (string, int) Hashtbl.t; (* per-table string dictionary *)
  mutable dict_rev : string array;
  mutable dict_n : int;
}

let fresh_zone () =
  {
    z_nonnull = 0;
    z_lo_i = max_int;
    z_hi_i = min_int;
    z_lo_f = infinity;
    z_hi_f = neg_infinity;
    z_tight = true;
  }

let create schema =
  let chunk_rows = chunk_rows_env () in
  let cap = chunk_rows in
  let mk_col (c : Schema.column) =
    let data =
      match c.Schema.dtype with
      | Dtype.Tint | Dtype.Tstr -> D_int (Array.make cap 0)
      | Dtype.Tfloat -> D_float (Array.make cap 0.)
      | Dtype.Tbool -> D_bool (Bytes.make cap '\000')
    in
    {
      dtype = c.Schema.dtype;
      data;
      nulls = Bytes.make (bitmap_bytes cap) '\000';
      zones = [| fresh_zone () |];
    }
  in
  {
    schema;
    chunk_rows;
    cols = Array.map mk_col (Array.of_list (Schema.columns schema));
    live = Bytes.make (bitmap_bytes cap) '\000';
    live_per_chunk = [| 0 |];
    cap;
    hi = 0;
    dict = Hashtbl.create 64;
    dict_rev = Array.make 16 "";
    dict_n = 0;
  }

let chunk_rows t = t.chunk_rows
let n_chunks t = (t.hi + t.chunk_rows - 1) / t.chunk_rows
let live_in_chunk t c = t.live_per_chunk.(c)

(** Reset to empty, keeping allocated capacity and the string
    dictionary (codes stay valid for re-inserted strings). *)
let clear t =
  Bytes.fill t.live 0 (Bytes.length t.live) '\000';
  Array.fill t.live_per_chunk 0 (Array.length t.live_per_chunk) 0;
  t.hi <- 0;
  Array.iter
    (fun col ->
      Bytes.fill col.nulls 0 (Bytes.length col.nulls) '\000';
      Array.iteri (fun i _ -> col.zones.(i) <- fresh_zone ()) col.zones)
    t.cols

(* ------------------------------------------------------------------ *)
(* Growth                                                              *)
(* ------------------------------------------------------------------ *)

let grow_bitmap old new_cap =
  let b = Bytes.make (bitmap_bytes new_cap) '\000' in
  Bytes.blit old 0 b 0 (Bytes.length old);
  b

let ensure t rid =
  if rid >= t.cap then begin
    let new_cap =
      let c = ref (max t.cap t.chunk_rows) in
      while rid >= !c do
        c := !c * 2
      done;
      (* round up to a whole number of chunks *)
      (!c + t.chunk_rows - 1) / t.chunk_rows * t.chunk_rows
    in
    let nchunks = new_cap / t.chunk_rows in
    Array.iter
      (fun col ->
        (match col.data with
        | D_int a ->
          let b = Array.make new_cap 0 in
          Array.blit a 0 b 0 t.cap;
          col.data <- D_int b
        | D_float a ->
          let b = Array.make new_cap 0. in
          Array.blit a 0 b 0 t.cap;
          col.data <- D_float b
        | D_bool a ->
          let b = Bytes.make new_cap '\000' in
          Bytes.blit a 0 b 0 t.cap;
          col.data <- D_bool b);
        col.nulls <- grow_bitmap col.nulls new_cap;
        col.zones <-
          Array.init nchunks (fun i ->
              if i < Array.length col.zones then col.zones.(i) else fresh_zone ()))
      t.cols;
    t.live <- grow_bitmap t.live new_cap;
    t.live_per_chunk <-
      Array.init nchunks (fun i ->
          if i < Array.length t.live_per_chunk then t.live_per_chunk.(i) else 0);
    t.cap <- new_cap
  end

(* ------------------------------------------------------------------ *)
(* Dictionary                                                          *)
(* ------------------------------------------------------------------ *)

let dict_add t s =
  match Hashtbl.find_opt t.dict s with
  | Some c -> c
  | None ->
    let c = t.dict_n in
    if c >= Array.length t.dict_rev then begin
      let b = Array.make (max 16 (2 * Array.length t.dict_rev)) "" in
      Array.blit t.dict_rev 0 b 0 t.dict_n;
      t.dict_rev <- b
    end;
    t.dict_rev.(c) <- s;
    t.dict_n <- c + 1;
    Hashtbl.add t.dict s c;
    c

let dict_find t s = Hashtbl.find_opt t.dict s
let dict_size t = t.dict_n

let dict_string t code =
  if code < 0 || code >= t.dict_n then invalid_arg "Colstore.dict_string";
  t.dict_rev.(code)

(* ------------------------------------------------------------------ *)
(* Zone maintenance                                                    *)
(* ------------------------------------------------------------------ *)

(* Float bounds follow Float.compare order (NaN below everything), not
   IEEE [<], so zones classify NaN the same way Value.compare does. *)
let fmin a b = if Float.compare a b <= 0 then a else b
let fmax a b = if Float.compare a b >= 0 then a else b

let zone_add_i z x =
  if z.z_nonnull = 0 then begin
    z.z_lo_i <- x;
    z.z_hi_i <- x;
    z.z_tight <- true
  end
  else begin
    if x < z.z_lo_i then z.z_lo_i <- x;
    if x > z.z_hi_i then z.z_hi_i <- x
  end;
  z.z_nonnull <- z.z_nonnull + 1

let zone_add_f z x =
  if z.z_nonnull = 0 then begin
    z.z_lo_f <- x;
    z.z_hi_f <- x;
    z.z_tight <- true
  end
  else begin
    z.z_lo_f <- fmin z.z_lo_f x;
    z.z_hi_f <- fmax z.z_hi_f x
  end;
  z.z_nonnull <- z.z_nonnull + 1

let zone_remove z =
  z.z_nonnull <- z.z_nonnull - 1;
  if z.z_nonnull = 0 then begin
    (* empty again: bounds reset, so a recycled tombstone chunk regains
       exact zones on the next insert *)
    z.z_lo_i <- max_int;
    z.z_hi_i <- min_int;
    z.z_lo_f <- infinity;
    z.z_hi_f <- neg_infinity;
    z.z_tight <- true
  end
  else z.z_tight <- false

(* ------------------------------------------------------------------ *)
(* Cell writes                                                         *)
(* ------------------------------------------------------------------ *)

(* Values reaching here are schema-coerced (Schema.validate_row), so a
   Tint column only ever sees Int/Null, Tfloat only Float/Null, etc. *)
let set_cell t ci rid (v : Value.t) =
  let col = t.cols.(ci) in
  let z = col.zones.(rid / t.chunk_rows) in
  match v with
  | Value.Null -> bit_set col.nulls rid
  | Value.Int x ->
    bit_clear col.nulls rid;
    (match col.data with D_int a -> a.(rid) <- x | _ -> assert false);
    zone_add_i z x
  | Value.Float x ->
    bit_clear col.nulls rid;
    (match col.data with D_float a -> a.(rid) <- x | _ -> assert false);
    zone_add_f z x
  | Value.Str s ->
    bit_clear col.nulls rid;
    let code = dict_add t s in
    (match col.data with D_int a -> a.(rid) <- code | _ -> assert false);
    zone_add_i z code
  | Value.Bool b ->
    bit_clear col.nulls rid;
    let x = if b then 1 else 0 in
    (match col.data with
    | D_bool a -> Bytes.unsafe_set a rid (if b then '\001' else '\000')
    | _ -> assert false);
    zone_add_i z x

let clear_cell t ci rid (old : Value.t) =
  let col = t.cols.(ci) in
  if not (Value.is_null old) then zone_remove col.zones.(rid / t.chunk_rows)

(* ------------------------------------------------------------------ *)
(* Maintenance entry points (called from Base_table DML)               *)
(* ------------------------------------------------------------------ *)

let insert t rid (tuple : Tuple.t) =
  ensure t rid;
  if rid >= t.hi then t.hi <- rid + 1;
  let c = rid / t.chunk_rows in
  bit_set t.live rid;
  t.live_per_chunk.(c) <- t.live_per_chunk.(c) + 1;
  Array.iteri (fun ci v -> set_cell t ci rid v) tuple

let delete t rid (old : Tuple.t) =
  let c = rid / t.chunk_rows in
  bit_clear t.live rid;
  t.live_per_chunk.(c) <- t.live_per_chunk.(c) - 1;
  Array.iteri (fun ci v -> clear_cell t ci rid v) old

let update t rid ~(old : Tuple.t) (tuple : Tuple.t) =
  Array.iteri
    (fun ci v ->
      clear_cell t ci rid old.(ci);
      set_cell t ci rid v)
    tuple

(* ------------------------------------------------------------------ *)
(* Column statistics (planner)                                         *)
(* ------------------------------------------------------------------ *)

let col_null_count t ci =
  let col = t.cols.(ci) in
  let n = ref 0 in
  for c = 0 to n_chunks t - 1 do
    n := !n + (t.live_per_chunk.(c) - col.zones.(c).z_nonnull)
  done;
  !n

(* Aggregate zone bounds into a (possibly conservative) value range.
   Meaningless for strings (dictionary-code order) and trivial for
   bools, so only Tint/Tfloat report one. *)
let col_range t ci =
  let col = t.cols.(ci) in
  match col.dtype with
  | Dtype.Tstr | Dtype.Tbool -> None
  | Dtype.Tint ->
    let lo = ref max_int and hi = ref min_int and any = ref false in
    for c = 0 to n_chunks t - 1 do
      let z = col.zones.(c) in
      if z.z_nonnull > 0 then begin
        any := true;
        if z.z_lo_i < !lo then lo := z.z_lo_i;
        if z.z_hi_i > !hi then hi := z.z_hi_i
      end
    done;
    if !any then Some (Value.Int !lo, Value.Int !hi) else None
  | Dtype.Tfloat ->
    let lo = ref infinity and hi = ref neg_infinity and any = ref false in
    for c = 0 to n_chunks t - 1 do
      let z = col.zones.(c) in
      if z.z_nonnull > 0 then begin
        any := true;
        lo := fmin !lo z.z_lo_f;
        hi := fmax !hi z.z_hi_f
      end
    done;
    if !any then Some (Value.Float !lo, Value.Float !hi) else None

let col_tight t ci =
  Array.for_all (fun z -> z.z_tight) t.cols.(ci).zones

(* ------------------------------------------------------------------ *)
(* Predicate atoms and compiled chunk kernels                          *)
(* ------------------------------------------------------------------ *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type atom =
  | A_cmp of int * cmp * Value.t (* column <op> constant *)
  | A_is_null of int
  | A_not_null of int

(* A compiled atom carries a pass-mask indexed by the sign of
   [compare value const]: (pass_lt, pass_eq, pass_gt).  One mask covers
   all six operators, and chunk pruning is the uniform test "no sign a
   zone value can take has a true mask bit". *)
type catom =
  | K_int of int * bool * bool * bool * int
  | K_float of int * bool * bool * bool * float
  | K_code of int * bool * bool * bool * int (* dictionary-code space *)
  | K_null of int
  | K_not_null of int
  | K_none (* statically empty, e.g. Eq on a string absent from the dict *)

let mask_of = function
  | Ceq -> (false, true, false)
  | Cne -> (true, false, true)
  | Clt -> (true, false, false)
  | Cle -> (true, true, false)
  | Cgt -> (false, false, true)
  | Cge -> (false, true, true)

(* Can [float_of_int k] represent k exactly?  (Always true below 2^53.) *)
let int_exact_as_float k =
  let f = float_of_int k in
  match Value.int_key_of_float f with Some k' -> k' = k | None -> false

let compile_atom t atom : catom option =
  match atom with
  | A_is_null ci -> Some (K_null ci)
  | A_not_null ci -> Some (K_not_null ci)
  | A_cmp (_, _, Value.Null) ->
    (* comparison with NULL is unknown everywhere: statically empty *)
    Some K_none
  | A_cmp (ci, op, const) ->
    let lt, eq, gt = mask_of op in
    (match t.cols.(ci).dtype, const with
    | Dtype.Tint, Value.Int k -> Some (K_int (ci, lt, eq, gt, k))
    | Dtype.Tint, Value.Float f ->
      (* exact int-vs-float semantics: only fold the constant into the
         int kernel when the float is itself an exact int *)
      (match Value.int_key_of_float f with
      | Some k -> Some (K_int (ci, lt, eq, gt, k))
      | None -> None)
    | Dtype.Tfloat, Value.Float f -> Some (K_float (ci, lt, eq, gt, f))
    | Dtype.Tfloat, Value.Int k when int_exact_as_float k ->
      Some (K_float (ci, lt, eq, gt, float_of_int k))
    | Dtype.Tstr, Value.Str s ->
      (match op with
      | Ceq ->
        (match dict_find t s with
        | Some code -> Some (K_code (ci, false, true, false, code))
        | None -> Some K_none)
      | Cne ->
        (match dict_find t s with
        | Some code -> Some (K_code (ci, true, false, true, code))
        | None ->
          (* string absent from the table: every non-null row differs *)
          Some (K_not_null ci))
      | Clt | Cle | Cgt | Cge ->
        (* dictionary codes are append-ordered, not lexicographic *)
        None)
    | Dtype.Tbool, Value.Bool b ->
      (match op with
      | Ceq -> Some (K_code (ci, false, true, false, if b then 1 else 0))
      | Cne -> Some (K_code (ci, true, false, true, if b then 1 else 0))
      | Clt | Cle | Cgt | Cge -> None)
    | _ -> None)

(* Uses the dictionary, so only valid against the same store (and the
   dictionary is append-only, so codes never go stale). *)
let compile t atoms =
  let rec go acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | a :: rest ->
      (match compile_atom t a with
      | Some k -> go (k :: acc) rest
      | None -> None)
  in
  go [] atoms

(* ------------------------------------------------------------------ *)
(* Chunk pruning                                                       *)
(* ------------------------------------------------------------------ *)

(* Which comparison signs can a value in [z_lo, z_hi] produce against
   the constant?  Prune when every possible sign has a false mask bit. *)
let prune_signs ~lt ~eq ~gt ~lo_sign ~hi_sign ~contains =
  let can_lt = lo_sign < 0 in
  let can_gt = hi_sign > 0 in
  let can_eq = contains in
  not ((can_lt && lt) || (can_eq && eq) || (can_gt && gt))

let prune_atom t catom chunk =
  let live = t.live_per_chunk.(chunk) in
  if live = 0 then true
  else
    match catom with
    | K_none -> true
    | K_null ci ->
      (* no live NULLs in this chunk *)
      t.cols.(ci).zones.(chunk).z_nonnull = live
    | K_not_null ci -> t.cols.(ci).zones.(chunk).z_nonnull = 0
    | K_int (ci, lt, eq, gt, k) | K_code (ci, lt, eq, gt, k) ->
      let z = t.cols.(ci).zones.(chunk) in
      if z.z_nonnull = 0 then true
      else
        prune_signs ~lt ~eq ~gt
          ~lo_sign:(Int.compare z.z_lo_i k)
          ~hi_sign:(Int.compare z.z_hi_i k)
          ~contains:(z.z_lo_i <= k && k <= z.z_hi_i)
    | K_float (ci, lt, eq, gt, k) ->
      let z = t.cols.(ci).zones.(chunk) in
      if z.z_nonnull = 0 then true
      else
        let lo_sign = Float.compare z.z_lo_f k
        and hi_sign = Float.compare z.z_hi_f k in
        prune_signs ~lt ~eq ~gt ~lo_sign ~hi_sign
          ~contains:(lo_sign <= 0 && hi_sign >= 0)

let prune_chunk t catoms chunk =
  t.live_per_chunk.(chunk) = 0
  || Array.exists (fun k -> prune_atom t k chunk) catoms

(* ------------------------------------------------------------------ *)
(* Selection-vector generation                                         *)
(* ------------------------------------------------------------------ *)

(* Fill [sel] with the live slot ids of [chunk], ascending. *)
let fill_live t chunk sel =
  let base = chunk * t.chunk_rows in
  let hi = min (base + t.chunk_rows) t.hi in
  let live = t.live in
  let m = ref 0 in
  for s = base to hi - 1 do
    if bit_get live s then begin
      Array.unsafe_set sel !m s;
      incr m
    end
  done;
  !m

(* Refine [sel.(0..n)] in place by one compiled atom; returns the new
   length.  Comparison rows with a NULL cell never pass (SQL unknown). *)
let refine t catom sel n =
  match catom with
  | K_none -> 0
  | K_null ci ->
    let nulls = t.cols.(ci).nulls in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get sel i in
      if bit_get nulls s then begin
        Array.unsafe_set sel !m s;
        incr m
      end
    done;
    !m
  | K_not_null ci ->
    let nulls = t.cols.(ci).nulls in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get sel i in
      if not (bit_get nulls s) then begin
        Array.unsafe_set sel !m s;
        incr m
      end
    done;
    !m
  | K_int (ci, lt, eq, gt, k) | K_code (ci, lt, eq, gt, k) ->
    let col = t.cols.(ci) in
    let nulls = col.nulls in
    (match col.data with
    | D_int a ->
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sel i in
        if not (bit_get nulls s) then begin
          let v = Array.unsafe_get a s in
          if (if v < k then lt else if v = k then eq else gt) then begin
            Array.unsafe_set sel !m s;
            incr m
          end
        end
      done;
      !m
    | D_bool a ->
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sel i in
        if not (bit_get nulls s) then begin
          let v = Char.code (Bytes.unsafe_get a s) in
          if (if v < k then lt else if v = k then eq else gt) then begin
            Array.unsafe_set sel !m s;
            incr m
          end
        end
      done;
      !m
    | D_float _ -> assert false)
  | K_float (ci, lt, eq, gt, k) ->
    let col = t.cols.(ci) in
    let nulls = col.nulls in
    (match col.data with
    | D_float a ->
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sel i in
        if not (bit_get nulls s) then begin
          (* Float.compare, not IEEE [<]: keeps NaN ordered exactly as
             the row path's Value.compare does *)
          let c = Float.compare (Array.unsafe_get a s) k in
          if (if c < 0 then lt else if c = 0 then eq else gt) then begin
            Array.unsafe_set sel !m s;
            incr m
          end
        end
      done;
      !m
    | D_int _ | D_bool _ -> assert false)

(* Selection vector for one chunk: live rows passing every atom,
   ascending slot order.  [sel] must have room for [chunk_rows]. *)
let select_chunk t catoms chunk sel =
  let n = ref (fill_live t chunk sel) in
  let i = ref 0 in
  let k = Array.length catoms in
  while !n > 0 && !i < k do
    n := refine t catoms.(!i) sel !n;
    incr i
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Direct column access (join-key extraction)                          *)
(* ------------------------------------------------------------------ *)

(* The unboxed ints and null bitmap of a Tint column; [None] for other
   types.  Slots are only meaningful where the live bitmap is set. *)
let int_column t ci =
  let col = t.cols.(ci) in
  match col.dtype, col.data with
  | Dtype.Tint, D_int a -> Some (a, col.nulls)
  | _ -> None

(* The dictionary codes and null bitmap of a Tstr column; [None] for
   other types.  Codes index this table's dictionary ({!dict_string})
   and follow insertion order, not collation — equality only. *)
let str_code_column t ci =
  let col = t.cols.(ci) in
  match col.dtype, col.data with
  | Dtype.Tstr, D_int a -> Some (a, col.nulls)
  | _ -> None

let is_live t rid = rid < t.hi && bit_get t.live rid
