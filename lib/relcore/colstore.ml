(** Two-tier columnar chunk mirror of the slotted heap.

    Each base table maintains, alongside the row heap, a column-major
    copy of the same slots.  The copy is chunked: slot [rid] of the
    heap is row [rid mod chunk_rows] of chunk [rid / chunk_rows], so a
    chunk-ascending scan visits rows in exactly the heap-scan order and
    the row store stays a byte-identical fallback and equivalence
    oracle.

    Chunks live in one of two tiers.  {e Hot} chunks hold today's
    unboxed arrays ([int array] / [float array] / [Bytes] for bools,
    dictionary codes for strings) plus a per-column null bitmap.
    {e Cold} chunks are encoded into a compact block — frame-of-
    reference + bit-packed ints, run-length runs, packed null bitmaps
    (see {!Encoding}) — and written to an unlinked mmap-backed spill
    file.  The [XNFDB_COLSTORE_MB] byte budget (per table; 0 or unset
    disables spilling entirely) is enforced with a clock sweep over
    full, unpinned chunks whenever the hot footprint grows.

    The block index never leaves memory: zone maps, the live bitmap and
    per-chunk live counts stay resident whatever the tier, so chunk
    pruning — by predicate zones or join-filter key ranges — decides
    without touching the spill file at all.  A pruned cold chunk is
    never decoded {e or faulted in}.  Predicate kernels evaluate
    directly on the encoded sections (constant/FOR compare, RLE run
    skipping), and only DML against a cold chunk promotes it back to
    hot arrays.

    Zone maps are widened on insert and only invalidated (never
    shrunk) on delete/update, so they are always conservative: pruning
    a chunk can only lose an opportunity, never a row.  All maintenance
    happens inside the same {!Base_table} mutations that bump
    {!Heap.version}, so every version-keyed cache (plan statistics,
    CO-view results) that snapshots zone-derived data is invalidated by
    the same counter. *)

(* ------------------------------------------------------------------ *)
(* Knobs                                                               *)
(* ------------------------------------------------------------------ *)

(* XNFDB_COLSTORE gates *use* of the columnar path (executor scans, key
   extraction, planner statistics); maintenance is always on so the
   knob can be flipped mid-process and both paths stay coherent. *)
let enabled () =
  match Sys.getenv_opt "XNFDB_COLSTORE" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

let default_chunk_rows = 1024

let chunk_rows_env () =
  match Sys.getenv_opt "XNFDB_CHUNK_ROWS" with
  | Some s -> (try max 16 (int_of_string (String.trim s)) with _ -> default_chunk_rows)
  | None -> default_chunk_rows

(* XNFDB_COLSTORE_MB: per-table hot-tier byte budget.  0 or unset
   disables the two-tier machinery completely (every chunk stays hot,
   exactly the pre-spill behavior).  Read at the points where the hot
   footprint can grow, so flipping it mid-process takes effect at the
   next chunk allocation or promotion. *)
let budget_bytes () =
  match Sys.getenv_opt "XNFDB_COLSTORE_MB" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some mb when mb > 0 -> mb * 1024 * 1024
    | _ -> 0)
  | None -> 0

(* XNFDB_COLSTORE_ENC=0 forces raw (uncompressed) cold blocks — the
   "spill with no encoding" baseline E11 measures against. *)
let encode_enabled () =
  match Sys.getenv_opt "XNFDB_COLSTORE_ENC" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

(* XNFDB_COLSTORE_BLOCKIDX=0 stops zone maps from acting as a block
   index over the spill file: cold chunks are always faulted in and
   evaluated (hot-chunk zone pruning is untouched).  Ablation knob for
   the E11 naive-spill baseline. *)
let block_index_enabled () =
  match Sys.getenv_opt "XNFDB_COLSTORE_BLOCKIDX" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

(* ------------------------------------------------------------------ *)
(* Process-wide counters (surfaced by [explain])                       *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable chunks_scanned : int;
  mutable chunks_skipped : int;
  mutable rows_materialized : int;
  mutable chunks_encoded : int; (* hot chunks encoded into cold blocks *)
  mutable chunks_decoded : int; (* cold chunks promoted back to hot (DML) *)
  mutable chunks_faulted : int; (* cold chunks read by scans (no promote) *)
  mutable chunks_evicted : int; (* budget-driven hot->cold transitions *)
  mutable bytes_spilled : int; (* cumulative encoded bytes written *)
  mutable bytes_faulted : int; (* cumulative bytes copied back by scans *)
}

let totals =
  {
    chunks_scanned = 0;
    chunks_skipped = 0;
    rows_materialized = 0;
    chunks_encoded = 0;
    chunks_decoded = 0;
    chunks_faulted = 0;
    chunks_evicted = 0;
    bytes_spilled = 0;
    bytes_faulted = 0;
  }

let add_totals ?(faulted = 0) ?(fbytes = 0) ~scanned ~skipped ~materialized () =
  totals.chunks_scanned <- totals.chunks_scanned + scanned;
  totals.chunks_skipped <- totals.chunks_skipped + skipped;
  totals.rows_materialized <- totals.rows_materialized + materialized;
  totals.chunks_faulted <- totals.chunks_faulted + faulted;
  totals.bytes_faulted <- totals.bytes_faulted + fbytes

(* Per-scan fault counters: scans (possibly many per domain) accumulate
   here and the executor folds them into its ctx and [totals] itself —
   the colstore never bumps process totals from read paths, so parallel
   workers stay race-free exactly like the existing chunk counters. *)
type scan_stats = { mutable faulted : int; mutable fbytes : int }

let scan_stats () = { faulted = 0; fbytes = 0 }

(* Process-wide tier gauges across every live store (bench metadata).
   Adjusted at tier transitions and reclaimed by [release] — which each
   store also runs as a GC finaliser, so dropped databases don't leave
   phantom bytes behind. *)
let g_resident = ref 0
let g_spilled = ref 0

let global_resident_bytes () = !g_resident
let global_spilled_bytes () = !g_spilled

(* ------------------------------------------------------------------ *)
(* Bitmaps                                                             *)
(* ------------------------------------------------------------------ *)

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let bit_clear b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) land lnot (1 lsl (i land 7))))

let bitmap_bytes slots = (slots + 7) lsr 3

(* ------------------------------------------------------------------ *)
(* Encoding: one chunk-column section                                  *)
(* ------------------------------------------------------------------ *)

module Encoding = struct
  (* A section encodes the [n] cells of one column of one chunk:

       byte 0          data tag: 0 raw64, 1 FOR/bit-packed, 2 RLE
       byte 1          null tag: 0 no live nulls, 1 all live rows null,
                                 2 bitmap follows
       bytes 2..       null bitmap ((n+7)/8 bytes) when null tag = 2
       payload         per data tag, all integers little-endian

     Payloads: raw64 is n × 8-byte values (floats as IEEE bit patterns,
     so NaN payloads and -0.0 round-trip exactly); FOR is an 8-byte
     base, a 1-byte width in [0, 63], and n bit-packed deltas (width 0
     means the column is constant); RLE is a 4-byte run count then
     (8-byte value, 4-byte length) runs.

     Values at dead or NULL positions are don't-care: the encoder
     overwrites them with the nearest preceding live value so runs stay
     long and FOR ranges narrow.  OCaml ints are 63-bit, so max - min
     always fits a non-negative [Int64] and FOR never overflows, even
     across [min_int .. max_int].  Floats only use raw64/RLE — their
     bit patterns have no exploitable linear order. *)

  let t_raw = 0
  let t_for = 1
  let t_rle = 2
  let n_none = 0
  let n_all = 1
  let n_bitmap = 2

  let data_tag (sec : Bytes.t) = Char.code (Bytes.get sec 0)
  let null_tag (sec : Bytes.t) = Char.code (Bytes.get sec 1)

  let payload_off (sec : Bytes.t) ~n =
    2 + if null_tag sec = n_bitmap then bitmap_bytes n else 0

  let is_null (sec : Bytes.t) l =
    match Char.code (Bytes.unsafe_get sec 1) with
    | 0 -> false
    | 1 -> true
    | _ -> Char.code (Bytes.unsafe_get sec (2 + (l lsr 3))) land (1 lsl (l land 7)) <> 0

  let get_u32 (b : Bytes.t) off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
  let set_u32 (b : Bytes.t) off v = Bytes.set_int32_le b off (Int32.of_int v)

  let bits_needed (r : int64) =
    let rec go n r = if r = 0L then n else go (n + 1) (Int64.shift_right_logical r 1) in
    go 0 r

  (* Read [bits] bits at bit position [bitpos] of the packed stream
     starting at byte [off]; byte-at-a-time, so the last value never
     reads past the payload. *)
  let get_bits (b : Bytes.t) ~off ~bitpos ~bits =
    let v = ref 0L and got = ref 0 and bp = ref bitpos in
    while !got < bits do
      let byte = off + (!bp lsr 3) and sh = !bp land 7 in
      let take = min (8 - sh) (bits - !got) in
      let piece = (Char.code (Bytes.unsafe_get b byte) lsr sh) land ((1 lsl take) - 1) in
      v := Int64.logor !v (Int64.shift_left (Int64.of_int piece) !got);
      got := !got + take;
      bp := !bp + take
    done;
    !v

  let pack_bits buf (vals : int64 array) (lo : int64) bits =
    let n = Array.length vals in
    let out = Bytes.make ((n * bits + 7) lsr 3) '\000' in
    let bitpos = ref 0 in
    for i = 0 to n - 1 do
      let d = ref (Int64.sub (Array.unsafe_get vals i) lo) in
      let bp = ref !bitpos and rem = ref bits in
      while !rem > 0 do
        let byte = !bp lsr 3 and sh = !bp land 7 in
        let take = min (8 - sh) !rem in
        let mask = (1 lsl take) - 1 in
        let piece = Int64.to_int (Int64.logand !d (Int64.of_int mask)) land mask in
        let cur = Char.code (Bytes.unsafe_get out byte) in
        Bytes.unsafe_set out byte (Char.unsafe_chr ((cur lor (piece lsl sh)) land 0xff));
        d := Int64.shift_right_logical !d take;
        bp := !bp + take;
        rem := !rem - take
      done;
      bitpos := !bitpos + bits
    done;
    Buffer.add_bytes buf out

  let encode_section ~raw ~allow_for ~n ~(get : int -> int64) ~(null : int -> bool)
      ~(live : int -> bool) : Bytes.t =
    if n = 0 then Bytes.of_string "\000\000"
    else begin
      let nlive = ref 0 and nnull = ref 0 in
      for l = 0 to n - 1 do
        if live l then begin
          incr nlive;
          if null l then incr nnull
        end
      done;
      let ntag =
        if !nnull = 0 then n_none
        else if !nnull = !nlive then n_all
        else n_bitmap
      in
      (* previous-live-value fill: dead/NULL cells carry garbage, so
         normalize them to keep runs long and the FOR range narrow *)
      let valid l = live l && not (null l) in
      let vals = Array.make n 0L in
      let first = ref 0L in
      (try
         for l = 0 to n - 1 do
           if valid l then begin
             first := get l;
             raise Exit
           end
         done
       with Exit -> ());
      let prev = ref !first in
      for l = 0 to n - 1 do
        if valid l then prev := get l;
        vals.(l) <- !prev
      done;
      let nruns = ref 1 in
      for l = 1 to n - 1 do
        if vals.(l) <> vals.(l - 1) then incr nruns
      done;
      let lo = ref vals.(0) and hi = ref vals.(0) in
      for l = 1 to n - 1 do
        if Int64.compare vals.(l) !lo < 0 then lo := vals.(l);
        if Int64.compare vals.(l) !hi > 0 then hi := vals.(l)
      done;
      let range = Int64.sub !hi !lo in
      let bits = bits_needed range in
      let size_raw = 8 * n in
      let size_for =
        (* a negative range means int64 overflow (impossible for 63-bit
           OCaml ints, possible for arbitrary test input): no FOR *)
        if allow_for && Int64.compare range 0L >= 0 && bits <= 63 then
          9 + ((n * bits + 7) lsr 3)
        else max_int
      in
      let size_rle = 4 + (12 * !nruns) in
      let dtag =
        if raw then t_raw
        else if size_for <= size_raw && size_for <= size_rle then t_for
        else if size_rle < size_raw then t_rle
        else t_raw
      in
      let buf = Buffer.create (2 + min size_raw (min size_for size_rle) + bitmap_bytes n) in
      Buffer.add_char buf (Char.chr dtag);
      Buffer.add_char buf (Char.chr ntag);
      if ntag = n_bitmap then begin
        let bm = Bytes.make (bitmap_bytes n) '\000' in
        for l = 0 to n - 1 do
          if null l then bit_set bm l
        done;
        Buffer.add_bytes buf bm
      end;
      (if dtag = t_raw then
         for l = 0 to n - 1 do
           Buffer.add_int64_le buf vals.(l)
         done
       else if dtag = t_for then begin
         Buffer.add_int64_le buf !lo;
         Buffer.add_char buf (Char.chr bits);
         if bits > 0 then pack_bits buf vals !lo bits
       end
       else begin
         let nb = Bytes.create 4 in
         set_u32 nb 0 !nruns;
         Buffer.add_bytes buf nb;
         let run_v = ref vals.(0) and run_len = ref 1 in
         let flush () =
           Buffer.add_int64_le buf !run_v;
           let lb = Bytes.create 4 in
           set_u32 lb 0 !run_len;
           Buffer.add_bytes buf lb
         in
         for l = 1 to n - 1 do
           if vals.(l) = !run_v then incr run_len
           else begin
             flush ();
             run_v := vals.(l);
             run_len := 1
           end
         done;
         flush ()
       end);
      Buffer.to_bytes buf
    end

  let decode_nulls_into (sec : Bytes.t) ~n (out : Bytes.t) =
    let nb = bitmap_bytes n in
    match null_tag sec with
    | 0 -> Bytes.fill out 0 nb '\000'
    | 1 -> Bytes.fill out 0 nb '\255'
    | _ -> Bytes.blit sec 2 out 0 nb

  (* Decode every position (dead/NULL cells yield the encoder's filler,
     gated by the live/null bitmaps exactly like hot garbage cells). *)
  let decode_i64 (sec : Bytes.t) ~n (set : int -> int64 -> unit) =
    let poff = payload_off sec ~n in
    match data_tag sec with
    | 0 ->
      for l = 0 to n - 1 do
        set l (Bytes.get_int64_le sec (poff + (8 * l)))
      done
    | 1 ->
      let base = Bytes.get_int64_le sec poff in
      let bits = Char.code (Bytes.get sec (poff + 8)) in
      if bits = 0 then
        for l = 0 to n - 1 do
          set l base
        done
      else begin
        let doff = poff + 9 in
        let bitpos = ref 0 in
        for l = 0 to n - 1 do
          set l (Int64.add base (get_bits sec ~off:doff ~bitpos:!bitpos ~bits));
          bitpos := !bitpos + bits
        done
      end
    | 2 ->
      let nruns = get_u32 sec poff in
      let pos = ref 0 in
      for r = 0 to nruns - 1 do
        let ro = poff + 4 + (r * 12) in
        let v = Bytes.get_int64_le sec ro in
        let len = get_u32 sec (ro + 8) in
        for _ = 1 to len do
          if !pos < n then set !pos v;
          incr pos
        done
      done
    | _ -> invalid_arg "Colstore.Encoding: corrupt data tag"

  let decode_ints_into sec ~n (out : int array) =
    decode_i64 sec ~n (fun l v -> Array.unsafe_set out l (Int64.to_int v))

  let decode_floats_into sec ~n (out : float array) =
    decode_i64 sec ~n (fun l v -> Array.unsafe_set out l (Int64.float_of_bits v))

  let decode_bools_into sec ~n (out : Bytes.t) =
    decode_i64 sec ~n (fun l v ->
        Bytes.unsafe_set out l (if Int64.equal v 0L then '\000' else '\001'))

  (* test-facing wrappers *)

  let encode_ints ?(raw = false) (a : int array) ~null ~live =
    encode_section ~raw ~allow_for:true ~n:(Array.length a)
      ~get:(fun l -> Int64.of_int a.(l))
      ~null ~live

  let decode_ints sec ~n =
    let out = Array.make n 0 and nulls = Bytes.make (bitmap_bytes n) '\000' in
    decode_ints_into sec ~n out;
    decode_nulls_into sec ~n nulls;
    (out, nulls)

  let encode_floats ?(raw = false) (a : float array) ~null ~live =
    encode_section ~raw ~allow_for:false ~n:(Array.length a)
      ~get:(fun l -> Int64.bits_of_float a.(l))
      ~null ~live

  let decode_floats sec ~n =
    let out = Array.make n 0. and nulls = Bytes.make (bitmap_bytes n) '\000' in
    decode_floats_into sec ~n out;
    decode_nulls_into sec ~n nulls;
    (out, nulls)
end

(* ------------------------------------------------------------------ *)
(* Spill file: unlinked temp file, mmap-grown, free-listed             *)
(* ------------------------------------------------------------------ *)

type map_t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type spill = {
  sp_fd : Unix.file_descr;
  mutable sp_map : map_t;
  mutable sp_cap : int; (* mapped bytes (file is at least this long) *)
  mutable sp_used : int; (* allocation high-water mark *)
  mutable sp_free : (int * int) list; (* (off, len), offset-sorted, coalesced *)
  mutable sp_closed : bool;
}

let map_fd fd len : map_t =
  (* [Unix.map_file] with a shared mapping extends the file to [len] *)
  Bigarray.array1_of_genarray (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| len |])

let spill_min_cap = 1 lsl 20

let spill_close sp =
  if not sp.sp_closed then begin
    sp.sp_closed <- true;
    try Unix.close sp.sp_fd with Unix.Unix_error _ -> ()
  end

let spill_create () =
  let path = Filename.temp_file "xnfdb-spill-" ".bin" in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o600 in
  (* unlink immediately: the fd and mapping keep the storage reachable,
     and neither a crash nor an un-dropped table can leak a disk file *)
  (try Sys.remove path with Sys_error _ -> ());
  let sp =
    {
      sp_fd = fd;
      sp_map = map_fd fd spill_min_cap;
      sp_cap = spill_min_cap;
      sp_used = 0;
      sp_free = [];
      sp_closed = false;
    }
  in
  (* the fd is closed by [release]/[clear]; the finaliser only covers
     stores dropped without either (the guard makes double-close safe
     and never touches a recycled descriptor number) *)
  Gc.finalise spill_close sp;
  sp

(* First-fit over the coalesced free list, else bump the high-water
   mark, doubling the mapping as needed. *)
let spill_alloc sp len =
  let rec pick acc = function
    | [] -> None
    | (o, l) :: tl when l >= len ->
      let rest = if l > len then (o + len, l - len) :: tl else tl in
      sp.sp_free <- List.rev_append acc rest;
      Some o
    | e :: tl -> pick (e :: acc) tl
  in
  match pick [] sp.sp_free with
  | Some o -> o
  | None ->
    let o = sp.sp_used in
    sp.sp_used <- o + len;
    if sp.sp_used > sp.sp_cap then begin
      let cap = ref (max sp.sp_cap spill_min_cap) in
      while !cap < sp.sp_used do
        cap := !cap * 2
      done;
      sp.sp_map <- map_fd sp.sp_fd !cap;
      sp.sp_cap <- !cap
    end;
    o

let spill_free sp off len =
  let rec ins off len = function
    | [] -> [ (off, len) ]
    | (o, l) :: tl ->
      if off + len = o then (off, len + l) :: tl
      else if o + l = off then ins o (l + len) tl
      else if off < o then (off, len) :: (o, l) :: tl
      else (o, l) :: ins off len tl
  in
  sp.sp_free <- ins off len sp.sp_free

let spill_write sp off (b : Bytes.t) =
  let map = sp.sp_map in
  for i = 0 to Bytes.length b - 1 do
    Bigarray.Array1.unsafe_set map (off + i) (Bytes.unsafe_get b i)
  done

let map_u32 (m : map_t) off =
  Char.code (Bigarray.Array1.unsafe_get m off)
  lor (Char.code (Bigarray.Array1.unsafe_get m (off + 1)) lsl 8)
  lor (Char.code (Bigarray.Array1.unsafe_get m (off + 2)) lsl 16)
  lor (Char.code (Bigarray.Array1.unsafe_get m (off + 3)) lsl 24)

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(* ------------------------------------------------------------------ *)

type cdata =
  | D_int of int array (* Tint values; Tstr dictionary codes *)
  | D_float of float array
  | D_bool of Bytes.t

(* One column of one hot chunk: [chunk_rows] unboxed cells plus a
   chunk-local null bitmap. *)
type hcol = { hdata : cdata; hnulls : Bytes.t }

(* A chunk's tier.  [Hot [||]] is the unallocated sentinel: a chunk no
   DML has touched yet owns no arrays and costs no resident bytes (its
   live count is 0, so scans skip it before ever indexing the arrays).
   A [Cold] chunk is a directory-of-sections block in the spill file:
   (ncols+1) little-endian u32 section offsets, then the sections. *)
type tier =
  | Hot of hcol array
  | Cold of { c_off : int; c_len : int }

type chunk = {
  mutable tier : tier;
  mutable pins : int; (* scans holding the chunk's arrays/sections *)
  mutable refbit : bool; (* clock second-chance bit *)
}

(* Per-column, per-chunk zone map.  [z_lo_*]/[z_hi_*] are meaningful
   only when [z_nonnull > 0]; the int pair serves Tint (values), Tstr
   (dictionary codes — numeric code order, sound for equality pruning
   only) and Tbool (0/1).  Float bounds follow [Float.compare] order,
   so a stored NaN drags [z_lo_f] down to NaN and keeps pruning sound.
   [z_tight] records whether the bounds are exact or merely
   conservative (false after a delete/update removed a value while the
   chunk stayed non-empty). *)
type zone = {
  mutable z_nonnull : int;
  mutable z_lo_i : int;
  mutable z_hi_i : int;
  mutable z_lo_f : float;
  mutable z_hi_f : float;
  mutable z_tight : bool;
}

type col = {
  dtype : Dtype.t;
  mutable zones : zone array; (* one per chunk — always resident *)
}

type t = {
  schema : Schema.t;
  chunk_rows : int;
  cols : col array;
  mutable chunks : chunk array; (* one per allocated chunk *)
  mutable live : Bytes.t; (* bit set = slot holds a live row; resident *)
  mutable live_per_chunk : int array;
  mutable cap : int; (* allocated slots (a multiple of chunk_rows) *)
  mutable hi : int; (* slots ever used; mirrors Heap.capacity *)
  dict : (string, int) Hashtbl.t; (* per-table string dictionary *)
  mutable dict_rev : string array;
  mutable dict_n : int;
  hcb : int; (* hot bytes per materialized chunk (schema constant) *)
  mutable n_hot : int; (* materialized hot chunks *)
  mutable n_cold : int; (* encoded chunks in the spill file *)
  mutable spilled : int; (* current encoded bytes in the spill file *)
  mutable spill : spill option; (* created lazily on first eviction *)
  mutable clock : int; (* eviction sweep hand *)
  mutable need_enforce : bool; (* hot footprint grew since last check *)
  mutable released : bool;
}

let fresh_zone () =
  {
    z_nonnull = 0;
    z_lo_i = max_int;
    z_hi_i = min_int;
    z_lo_f = infinity;
    z_hi_f = neg_infinity;
    z_tight = true;
  }

let fresh_chunk () = { tier = Hot [||]; pins = 0; refbit = false }

let hot_bytes_of schema chunk_rows =
  List.fold_left
    (fun acc (c : Schema.column) ->
      acc
      + (match c.Schema.dtype with Dtype.Tbool -> chunk_rows | _ -> 8 * chunk_rows)
      + bitmap_bytes chunk_rows)
    0 (Schema.columns schema)

(* forward-declared so [create] can register it as a finaliser *)
let release_ref = ref (fun (_ : t) -> ())
let release t = !release_ref t

let create schema =
  let chunk_rows = chunk_rows_env () in
  let cap = chunk_rows in
  let mk_col (c : Schema.column) = { dtype = c.Schema.dtype; zones = [| fresh_zone () |] } in
  let t =
    {
      schema;
      chunk_rows;
      cols = Array.map mk_col (Array.of_list (Schema.columns schema));
      chunks = [| fresh_chunk () |];
      live = Bytes.make (bitmap_bytes cap) '\000';
      live_per_chunk = [| 0 |];
      cap;
      hi = 0;
      dict = Hashtbl.create 64;
      dict_rev = Array.make 16 "";
      dict_n = 0;
      hcb = hot_bytes_of schema chunk_rows;
      n_hot = 0;
      n_cold = 0;
      spilled = 0;
      spill = None;
      clock = 0;
      need_enforce = false;
      released = false;
    }
  in
  Gc.finalise release t;
  t

let chunk_rows t = t.chunk_rows
let n_chunks t = (t.hi + t.chunk_rows - 1) / t.chunk_rows
let live_in_chunk t c = t.live_per_chunk.(c)

let resident_bytes t = t.n_hot * t.hcb
let spilled_bytes t = t.spilled
let cold_chunks t = t.n_cold
let hot_chunk_bytes t = t.hcb

(* Fraction of used chunks currently cold — the planner's cold-access
   cost signal.  0 whenever spilling is off. *)
let cold_fraction t =
  let n = n_chunks t in
  if n = 0 then 0.0 else float_of_int t.n_cold /. float_of_int n

let pin t c =
  let ch = t.chunks.(c) in
  ch.pins <- ch.pins + 1

let unpin t c =
  let ch = t.chunks.(c) in
  if ch.pins > 0 then ch.pins <- ch.pins - 1

(* drop every chunk's tier state and the spill file; shared by [clear]
   and [release] *)
let drop_tiers t =
  Array.iter
    (fun ch ->
      ch.tier <- Hot [||];
      ch.pins <- 0;
      ch.refbit <- false)
    t.chunks;
  g_resident := !g_resident - (t.n_hot * t.hcb);
  g_spilled := !g_spilled - t.spilled;
  t.n_hot <- 0;
  t.n_cold <- 0;
  t.spilled <- 0;
  t.clock <- 0;
  (match t.spill with Some sp -> spill_close sp | None -> ());
  t.spill <- None

(** Reset to empty, keeping the string dictionary (codes stay valid for
    re-inserted strings).  Chunk arrays are dropped and the spill file
    is closed — its (already unlinked) storage is reclaimed, so a
    truncated table leaves no mmap segment behind. *)
let clear t =
  Bytes.fill t.live 0 (Bytes.length t.live) '\000';
  Array.fill t.live_per_chunk 0 (Array.length t.live_per_chunk) 0;
  t.hi <- 0;
  Array.iter
    (fun col -> Array.iteri (fun i _ -> col.zones.(i) <- fresh_zone ()) col.zones)
    t.cols;
  drop_tiers t;
  t.need_enforce <- false

let () =
  release_ref :=
    fun t ->
      if not t.released then begin
        t.released <- true;
        drop_tiers t
      end

(* ------------------------------------------------------------------ *)
(* Growth                                                              *)
(* ------------------------------------------------------------------ *)

let grow_bitmap old new_cap =
  let b = Bytes.make (bitmap_bytes new_cap) '\000' in
  Bytes.blit old 0 b 0 (Bytes.length old);
  b

(* Chunk data arrays are per-chunk and allocated on first touch, so
   growth only extends the resident index structures (live bitmap,
   per-chunk counters, zones, chunk records) — never copies cell data
   and never charges the budget for slots no DML has reached. *)
let ensure t rid =
  if rid >= t.cap then begin
    let new_cap =
      let c = ref (max t.cap t.chunk_rows) in
      while rid >= !c do
        c := !c * 2
      done;
      (* round up to a whole number of chunks *)
      (!c + t.chunk_rows - 1) / t.chunk_rows * t.chunk_rows
    in
    let nchunks = new_cap / t.chunk_rows in
    Array.iter
      (fun col ->
        col.zones <-
          Array.init nchunks (fun i ->
              if i < Array.length col.zones then col.zones.(i) else fresh_zone ()))
      t.cols;
    t.live <- grow_bitmap t.live new_cap;
    t.live_per_chunk <-
      Array.init nchunks (fun i ->
          if i < Array.length t.live_per_chunk then t.live_per_chunk.(i) else 0);
    t.chunks <-
      Array.init nchunks (fun i ->
          if i < Array.length t.chunks then t.chunks.(i) else fresh_chunk ());
    t.cap <- new_cap
  end

(* ------------------------------------------------------------------ *)
(* Dictionary                                                          *)
(* ------------------------------------------------------------------ *)

let dict_add t s =
  match Hashtbl.find_opt t.dict s with
  | Some c -> c
  | None ->
    let c = t.dict_n in
    if c >= Array.length t.dict_rev then begin
      let b = Array.make (max 16 (2 * Array.length t.dict_rev)) "" in
      Array.blit t.dict_rev 0 b 0 t.dict_n;
      t.dict_rev <- b
    end;
    t.dict_rev.(c) <- s;
    t.dict_n <- c + 1;
    Hashtbl.add t.dict s c;
    c

let dict_find t s = Hashtbl.find_opt t.dict s
let dict_size t = t.dict_n

let dict_string t code =
  if code < 0 || code >= t.dict_n then invalid_arg "Colstore.dict_string";
  t.dict_rev.(code)

(* ------------------------------------------------------------------ *)
(* Encode / fault / decode: tier transitions                           *)
(* ------------------------------------------------------------------ *)

let alloc_hcols t =
  Array.map
    (fun col ->
      let hdata =
        match col.dtype with
        | Dtype.Tint | Dtype.Tstr -> D_int (Array.make t.chunk_rows 0)
        | Dtype.Tfloat -> D_float (Array.make t.chunk_rows 0.)
        | Dtype.Tbool -> D_bool (Bytes.make t.chunk_rows '\000')
      in
      { hdata; hnulls = Bytes.make (bitmap_bytes t.chunk_rows) '\000' })
    t.cols

(* Encode one (full) hot chunk into a directory-of-sections block. *)
let encode_chunk t c (h : hcol array) : Bytes.t =
  let rows = t.chunk_rows in
  let base = c * rows in
  let raw = not (encode_enabled ()) in
  let live l = bit_get t.live (base + l) in
  let ncols = Array.length t.cols in
  let secs =
    Array.init ncols (fun ci ->
        let hc = h.(ci) in
        let null l = bit_get hc.hnulls l in
        match hc.hdata with
        | D_int a -> Encoding.encode_ints ~raw a ~null ~live
        | D_bool b ->
          let a = Array.init rows (fun l -> Char.code (Bytes.unsafe_get b l)) in
          Encoding.encode_ints ~raw a ~null ~live
        | D_float a -> Encoding.encode_floats ~raw a ~null ~live)
  in
  let dir_len = 4 * (ncols + 1) in
  let total = Array.fold_left (fun acc s -> acc + Bytes.length s) dir_len secs in
  let blob = Bytes.create total in
  let off = ref dir_len in
  Array.iteri
    (fun i s ->
      Encoding.set_u32 blob (4 * i) !off;
      Bytes.blit s 0 blob !off (Bytes.length s);
      off := !off + Bytes.length s)
    secs;
  Encoding.set_u32 blob (4 * ncols) !off;
  blob

let spill_of t =
  match t.spill with
  | Some sp when not sp.sp_closed -> sp
  | _ ->
    let sp = spill_create () in
    t.spill <- Some sp;
    sp

(* Copy one column's section out of a cold block.  The per-chunk fault
   counter is chunk-granular: [counted] dedupes multiple sections of
   the same visit. *)
let fault_section ?stats ~(counted : bool ref) t c_off ci =
  let sp =
    match t.spill with
    | Some sp when not sp.sp_closed -> sp
    | _ -> invalid_arg "Colstore: cold chunk without spill file"
  in
  let s0 = map_u32 sp.sp_map (c_off + (4 * ci)) in
  let s1 = map_u32 sp.sp_map (c_off + (4 * (ci + 1))) in
  let len = s1 - s0 in
  let sec = Bytes.create len in
  let src = c_off + s0 in
  let map = sp.sp_map in
  for i = 0 to len - 1 do
    Bytes.unsafe_set sec i (Bigarray.Array1.unsafe_get map (src + i))
  done;
  (match stats with
  | Some ss ->
    if not !counted then begin
      counted := true;
      ss.faulted <- ss.faulted + 1
    end;
    ss.fbytes <- ss.fbytes + len
  | None -> ());
  sec

let evict t c =
  let ch = t.chunks.(c) in
  match ch.tier with
  | Hot h when Array.length h > 0 ->
    let blob = encode_chunk t c h in
    let len = Bytes.length blob in
    let sp = spill_of t in
    let off = spill_alloc sp len in
    spill_write sp off blob;
    ch.tier <- Cold { c_off = off; c_len = len };
    t.n_hot <- t.n_hot - 1;
    t.n_cold <- t.n_cold + 1;
    t.spilled <- t.spilled + len;
    g_resident := !g_resident - t.hcb;
    g_spilled := !g_spilled + len;
    totals.chunks_encoded <- totals.chunks_encoded + 1;
    totals.chunks_evicted <- totals.chunks_evicted + 1;
    totals.bytes_spilled <- totals.bytes_spilled + len
  | _ -> ()

(* Hot-footprint budget: clock sweep with second-chance bits over
   materialized, unpinned, full chunks.  The chunk containing [hi]
   (the append tail) is never evicted, so encoded blocks always cover
   exactly [chunk_rows] cells.  The sweep is bounded, so a store whose
   unevictable remainder exceeds the budget terminates (over budget). *)
let enforce t =
  if not t.released then begin
    let b = budget_bytes () in
    if b > 0 && resident_bytes t > b then begin
      let nalloc = Array.length t.chunks in
      let steps = ref (2 * nalloc) in
      while resident_bytes t > b && !steps > 0 do
        decr steps;
        let c = t.clock in
        t.clock <- (if c + 1 >= nalloc then 0 else c + 1);
        let ch = t.chunks.(c) in
        match ch.tier with
        | Hot h
          when Array.length h > 0 && ch.pins = 0 && (c + 1) * t.chunk_rows <= t.hi
          ->
          if ch.refbit then ch.refbit <- false else evict t c
        | _ -> ()
      done
    end
  end

let maybe_enforce t =
  if t.need_enforce then begin
    t.need_enforce <- false;
    enforce t
  end

(* Decode a cold chunk back to hot arrays (DML is about to write it). *)
let promote t c : hcol array =
  let ch = t.chunks.(c) in
  match ch.tier with
  | Hot h -> h
  | Cold { c_off; c_len } ->
    let rows = t.chunk_rows in
    let h = alloc_hcols t in
    let counted = ref true (* promote counts as a decode, not a fault *) in
    Array.iteri
      (fun ci hc ->
        let sec = fault_section ~counted t c_off ci in
        Encoding.decode_nulls_into sec ~n:rows hc.hnulls;
        match hc.hdata with
        | D_int a -> Encoding.decode_ints_into sec ~n:rows a
        | D_float a -> Encoding.decode_floats_into sec ~n:rows a
        | D_bool b -> Encoding.decode_bools_into sec ~n:rows b)
      h;
    (match t.spill with Some sp -> spill_free sp c_off c_len | None -> ());
    ch.tier <- Hot h;
    ch.refbit <- true;
    t.n_hot <- t.n_hot + 1;
    t.n_cold <- t.n_cold - 1;
    t.spilled <- t.spilled - c_len;
    g_resident := !g_resident + t.hcb;
    g_spilled := !g_spilled - c_len;
    totals.chunks_decoded <- totals.chunks_decoded + 1;
    t.need_enforce <- true;
    h

(* The hot arrays of chunk [c], materializing or promoting as needed —
   the single write-path entry into a chunk. *)
let hot_cols t c : hcol array =
  let ch = t.chunks.(c) in
  match ch.tier with
  | Hot [||] ->
    let h = alloc_hcols t in
    ch.tier <- Hot h;
    ch.refbit <- true;
    t.n_hot <- t.n_hot + 1;
    g_resident := !g_resident + t.hcb;
    t.need_enforce <- true;
    h
  | Hot h -> h
  | Cold _ -> promote t c

(* ------------------------------------------------------------------ *)
(* Zone maintenance                                                    *)
(* ------------------------------------------------------------------ *)

(* Float bounds follow Float.compare order (NaN below everything), not
   IEEE [<], so zones classify NaN the same way Value.compare does. *)
let fmin a b = if Float.compare a b <= 0 then a else b
let fmax a b = if Float.compare a b >= 0 then a else b

let zone_add_i z x =
  if z.z_nonnull = 0 then begin
    z.z_lo_i <- x;
    z.z_hi_i <- x;
    z.z_tight <- true
  end
  else begin
    if x < z.z_lo_i then z.z_lo_i <- x;
    if x > z.z_hi_i then z.z_hi_i <- x
  end;
  z.z_nonnull <- z.z_nonnull + 1

let zone_add_f z x =
  if z.z_nonnull = 0 then begin
    z.z_lo_f <- x;
    z.z_hi_f <- x;
    z.z_tight <- true
  end
  else begin
    z.z_lo_f <- fmin z.z_lo_f x;
    z.z_hi_f <- fmax z.z_hi_f x
  end;
  z.z_nonnull <- z.z_nonnull + 1

let zone_remove z =
  z.z_nonnull <- z.z_nonnull - 1;
  if z.z_nonnull = 0 then begin
    (* empty again: bounds reset, so a recycled tombstone chunk regains
       exact zones on the next insert *)
    z.z_lo_i <- max_int;
    z.z_hi_i <- min_int;
    z.z_lo_f <- infinity;
    z.z_hi_f <- neg_infinity;
    z.z_tight <- true
  end
  else z.z_tight <- false

(* ------------------------------------------------------------------ *)
(* Cell writes                                                         *)
(* ------------------------------------------------------------------ *)

(* Values reaching here are schema-coerced (Schema.validate_row), so a
   Tint column only ever sees Int/Null, Tfloat only Float/Null, etc.
   [l] is the chunk-local row of chunk [c]. *)
let set_cell t (h : hcol array) ci c l (v : Value.t) =
  let hc = h.(ci) in
  let z = t.cols.(ci).zones.(c) in
  match v with
  | Value.Null -> bit_set hc.hnulls l
  | Value.Int x ->
    bit_clear hc.hnulls l;
    (match hc.hdata with D_int a -> a.(l) <- x | _ -> assert false);
    zone_add_i z x
  | Value.Float x ->
    bit_clear hc.hnulls l;
    (match hc.hdata with D_float a -> a.(l) <- x | _ -> assert false);
    zone_add_f z x
  | Value.Str s ->
    bit_clear hc.hnulls l;
    let code = dict_add t s in
    (match hc.hdata with D_int a -> a.(l) <- code | _ -> assert false);
    zone_add_i z code
  | Value.Bool b ->
    bit_clear hc.hnulls l;
    (match hc.hdata with
    | D_bool a -> Bytes.unsafe_set a l (if b then '\001' else '\000')
    | _ -> assert false);
    zone_add_i z (if b then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Maintenance entry points (called from Base_table DML)               *)
(* ------------------------------------------------------------------ *)

let insert t rid (tuple : Tuple.t) =
  ensure t rid;
  if rid >= t.hi then t.hi <- rid + 1;
  let c = rid / t.chunk_rows in
  let l = rid - (c * t.chunk_rows) in
  bit_set t.live rid;
  t.live_per_chunk.(c) <- t.live_per_chunk.(c) + 1;
  if Array.length t.cols > 0 then begin
    let h = hot_cols t c in
    Array.iteri (fun ci v -> set_cell t h ci c l v) tuple
  end;
  maybe_enforce t

(* Deletes only touch resident state (live bitmap + zones): a cold
   chunk stays cold — its encoded cells are simply dead under the live
   bitmap, exactly like garbage cells in a hot chunk. *)
let delete t rid (old : Tuple.t) =
  let c = rid / t.chunk_rows in
  bit_clear t.live rid;
  t.live_per_chunk.(c) <- t.live_per_chunk.(c) - 1;
  Array.iteri
    (fun ci v -> if not (Value.is_null v) then zone_remove t.cols.(ci).zones.(c))
    old

let update t rid ~(old : Tuple.t) (tuple : Tuple.t) =
  let c = rid / t.chunk_rows in
  let l = rid - (c * t.chunk_rows) in
  if Array.length t.cols > 0 then begin
    let h = hot_cols t c in
    Array.iteri
      (fun ci v ->
        if not (Value.is_null old.(ci)) then zone_remove t.cols.(ci).zones.(c);
        set_cell t h ci c l v)
      tuple
  end;
  maybe_enforce t

(* ------------------------------------------------------------------ *)
(* Column statistics (planner)                                         *)
(* ------------------------------------------------------------------ *)

let col_null_count t ci =
  let col = t.cols.(ci) in
  let n = ref 0 in
  for c = 0 to n_chunks t - 1 do
    n := !n + (t.live_per_chunk.(c) - col.zones.(c).z_nonnull)
  done;
  !n

(* Aggregate zone bounds into a (possibly conservative) value range.
   Meaningless for strings (dictionary-code order) and trivial for
   bools, so only Tint/Tfloat report one. *)
let col_range t ci =
  let col = t.cols.(ci) in
  match col.dtype with
  | Dtype.Tstr | Dtype.Tbool -> None
  | Dtype.Tint ->
    let lo = ref max_int and hi = ref min_int and any = ref false in
    for c = 0 to n_chunks t - 1 do
      let z = col.zones.(c) in
      if z.z_nonnull > 0 then begin
        any := true;
        if z.z_lo_i < !lo then lo := z.z_lo_i;
        if z.z_hi_i > !hi then hi := z.z_hi_i
      end
    done;
    if !any then Some (Value.Int !lo, Value.Int !hi) else None
  | Dtype.Tfloat ->
    let lo = ref infinity and hi = ref neg_infinity and any = ref false in
    for c = 0 to n_chunks t - 1 do
      let z = col.zones.(c) in
      if z.z_nonnull > 0 then begin
        any := true;
        lo := fmin !lo z.z_lo_f;
        hi := fmax !hi z.z_hi_f
      end
    done;
    if !any then Some (Value.Float !lo, Value.Float !hi) else None

let col_tight t ci =
  Array.for_all (fun z -> z.z_tight) t.cols.(ci).zones

(* ------------------------------------------------------------------ *)
(* Predicate atoms and compiled chunk kernels                          *)
(* ------------------------------------------------------------------ *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type atom =
  | A_cmp of int * cmp * Value.t (* column <op> constant *)
  | A_is_null of int
  | A_not_null of int

(* A compiled atom carries a pass-mask indexed by the sign of
   [compare value const]: (pass_lt, pass_eq, pass_gt).  One mask covers
   all six operators, and chunk pruning is the uniform test "no sign a
   zone value can take has a true mask bit". *)
type catom =
  | K_int of int * bool * bool * bool * int
  | K_float of int * bool * bool * bool * float
  | K_code of int * bool * bool * bool * int (* dictionary-code space *)
  | K_null of int
  | K_not_null of int
  | K_none (* statically empty, e.g. Eq on a string absent from the dict *)

let mask_of = function
  | Ceq -> (false, true, false)
  | Cne -> (true, false, true)
  | Clt -> (true, false, false)
  | Cle -> (true, true, false)
  | Cgt -> (false, false, true)
  | Cge -> (false, true, true)

(* Can [float_of_int k] represent k exactly?  (Always true below 2^53.) *)
let int_exact_as_float k =
  let f = float_of_int k in
  match Value.int_key_of_float f with Some k' -> k' = k | None -> false

let compile_atom t atom : catom option =
  match atom with
  | A_is_null ci -> Some (K_null ci)
  | A_not_null ci -> Some (K_not_null ci)
  | A_cmp (_, _, Value.Null) ->
    (* comparison with NULL is unknown everywhere: statically empty *)
    Some K_none
  | A_cmp (ci, op, const) ->
    let lt, eq, gt = mask_of op in
    (match t.cols.(ci).dtype, const with
    | Dtype.Tint, Value.Int k -> Some (K_int (ci, lt, eq, gt, k))
    | Dtype.Tint, Value.Float f ->
      (* exact int-vs-float semantics: only fold the constant into the
         int kernel when the float is itself an exact int *)
      (match Value.int_key_of_float f with
      | Some k -> Some (K_int (ci, lt, eq, gt, k))
      | None -> None)
    | Dtype.Tfloat, Value.Float f -> Some (K_float (ci, lt, eq, gt, f))
    | Dtype.Tfloat, Value.Int k when int_exact_as_float k ->
      Some (K_float (ci, lt, eq, gt, float_of_int k))
    | Dtype.Tstr, Value.Str s ->
      (match op with
      | Ceq ->
        (match dict_find t s with
        | Some code -> Some (K_code (ci, false, true, false, code))
        | None -> Some K_none)
      | Cne ->
        (match dict_find t s with
        | Some code -> Some (K_code (ci, true, false, true, code))
        | None ->
          (* string absent from the table: every non-null row differs *)
          Some (K_not_null ci))
      | Clt | Cle | Cgt | Cge ->
        (* dictionary codes are append-ordered, not lexicographic *)
        None)
    | Dtype.Tbool, Value.Bool b ->
      (match op with
      | Ceq -> Some (K_code (ci, false, true, false, if b then 1 else 0))
      | Cne -> Some (K_code (ci, true, false, true, if b then 1 else 0))
      | Clt | Cle | Cgt | Cge -> None)
    | _ -> None)

(* Uses the dictionary, so only valid against the same store (and the
   dictionary is append-only, so codes never go stale). *)
let compile t atoms =
  let rec go acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | a :: rest ->
      (match compile_atom t a with
      | Some k -> go (k :: acc) rest
      | None -> None)
  in
  go [] atoms

let catom_col = function
  | K_int (ci, _, _, _, _) | K_float (ci, _, _, _, _) | K_code (ci, _, _, _, _)
  | K_null ci | K_not_null ci ->
    ci
  | K_none -> -1

(* ------------------------------------------------------------------ *)
(* Chunk pruning                                                       *)
(* ------------------------------------------------------------------ *)

(* Which comparison signs can a value in [z_lo, z_hi] produce against
   the constant?  Prune when every possible sign has a false mask bit.
   Pruning reads only resident state (zones + live counts) — a pruned
   cold chunk is never faulted in. *)
let prune_signs ~lt ~eq ~gt ~lo_sign ~hi_sign ~contains =
  let can_lt = lo_sign < 0 in
  let can_gt = hi_sign > 0 in
  let can_eq = contains in
  not ((can_lt && lt) || (can_eq && eq) || (can_gt && gt))

let prune_atom t catom chunk =
  let live = t.live_per_chunk.(chunk) in
  if live = 0 then true
  else
    match catom with
    | K_none -> true
    | K_null ci ->
      (* no live NULLs in this chunk *)
      t.cols.(ci).zones.(chunk).z_nonnull = live
    | K_not_null ci -> t.cols.(ci).zones.(chunk).z_nonnull = 0
    | K_int (ci, lt, eq, gt, k) | K_code (ci, lt, eq, gt, k) ->
      let z = t.cols.(ci).zones.(chunk) in
      if z.z_nonnull = 0 then true
      else
        prune_signs ~lt ~eq ~gt
          ~lo_sign:(Int.compare z.z_lo_i k)
          ~hi_sign:(Int.compare z.z_hi_i k)
          ~contains:(z.z_lo_i <= k && k <= z.z_hi_i)
    | K_float (ci, lt, eq, gt, k) ->
      let z = t.cols.(ci).zones.(chunk) in
      if z.z_nonnull = 0 then true
      else
        let lo_sign = Float.compare z.z_lo_f k
        and hi_sign = Float.compare z.z_hi_f k in
        prune_signs ~lt ~eq ~gt ~lo_sign ~hi_sign
          ~contains:(lo_sign <= 0 && hi_sign >= 0)

let prune_chunk t catoms chunk =
  t.live_per_chunk.(chunk) = 0
  || ((match t.chunks.(chunk).tier with
      | Cold _ -> block_index_enabled ()
      | Hot _ -> true)
     && Array.exists (fun k -> prune_atom t k chunk) catoms)

(* ------------------------------------------------------------------ *)
(* Selection-vector generation                                         *)
(* ------------------------------------------------------------------ *)

(* Fill [sel] with the live slot ids of [chunk], ascending.  Reads the
   resident live bitmap only — no tier access. *)
let fill_live t chunk sel =
  let base = chunk * t.chunk_rows in
  let hi = min (base + t.chunk_rows) t.hi in
  let live = t.live in
  let m = ref 0 in
  for s = base to hi - 1 do
    if bit_get live s then begin
      Array.unsafe_set sel !m s;
      incr m
    end
  done;
  !m

(* Refine [sel.(0..n)] in place by one compiled atom against a hot
   chunk's arrays; returns the new length.  [base] converts global slot
   ids to chunk-local rows.  Comparison rows with a NULL cell never
   pass (SQL unknown). *)
let refine_hot (h : hcol array) ~base catom sel n =
  match catom with
  | K_none -> 0
  | K_null ci ->
    let nulls = h.(ci).hnulls in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get sel i in
      if bit_get nulls (s - base) then begin
        Array.unsafe_set sel !m s;
        incr m
      end
    done;
    !m
  | K_not_null ci ->
    let nulls = h.(ci).hnulls in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get sel i in
      if not (bit_get nulls (s - base)) then begin
        Array.unsafe_set sel !m s;
        incr m
      end
    done;
    !m
  | K_int (ci, lt, eq, gt, k) | K_code (ci, lt, eq, gt, k) ->
    let hc = h.(ci) in
    let nulls = hc.hnulls in
    (match hc.hdata with
    | D_int a ->
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sel i in
        let l = s - base in
        if not (bit_get nulls l) then begin
          let v = Array.unsafe_get a l in
          if (if v < k then lt else if v = k then eq else gt) then begin
            Array.unsafe_set sel !m s;
            incr m
          end
        end
      done;
      !m
    | D_bool a ->
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sel i in
        let l = s - base in
        if not (bit_get nulls l) then begin
          let v = Char.code (Bytes.unsafe_get a l) in
          if (if v < k then lt else if v = k then eq else gt) then begin
            Array.unsafe_set sel !m s;
            incr m
          end
        end
      done;
      !m
    | D_float _ -> assert false)
  | K_float (ci, lt, eq, gt, k) ->
    let hc = h.(ci) in
    let nulls = hc.hnulls in
    (match hc.hdata with
    | D_float a ->
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sel i in
        let l = s - base in
        if not (bit_get nulls l) then begin
          (* Float.compare, not IEEE [<]: keeps NaN ordered exactly as
             the row path's Value.compare does *)
          let c = Float.compare (Array.unsafe_get a l) k in
          if (if c < 0 then lt else if c = 0 then eq else gt) then begin
            Array.unsafe_set sel !m s;
            incr m
          end
        end
      done;
      !m
    | D_int _ | D_bool _ -> assert false)

(* Refine [sel] by one atom evaluated directly on an encoded section —
   no chunk-wide decode.  FOR with width 0 is a single compare for the
   whole chunk; RLE evaluates the predicate once per run and reuses the
   verdict across the run (sel is ascending, so the merge walk is one
   pass). *)
let refine_cold (sec : Bytes.t) ~rows ~base catom sel n =
  let ntag = Encoding.null_tag sec in
  let isnull l = Encoding.is_null sec l in
  let filter_by pass =
    let m = ref 0 in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get sel i in
      if pass (s - base) then begin
        Array.unsafe_set sel !m s;
        incr m
      end
    done;
    !m
  in
  let poff = Encoding.payload_off sec ~n:rows in
  let numeric keep_i keep_f =
    ignore keep_f;
    match Encoding.data_tag sec with
    | 0 ->
      filter_by (fun l ->
          (not (isnull l))
          && keep_i (Int64.to_int (Bytes.get_int64_le sec (poff + (8 * l)))))
    | 1 ->
      let b64 = Bytes.get_int64_le sec poff in
      let bits = Char.code (Bytes.get sec (poff + 8)) in
      if bits = 0 then
        if keep_i (Int64.to_int b64) then
          if ntag = Encoding.n_none then n else filter_by (fun l -> not (isnull l))
        else 0
      else begin
        let doff = poff + 9 in
        filter_by (fun l ->
            (not (isnull l))
            && keep_i
                 (Int64.to_int
                    (Int64.add b64
                       (Encoding.get_bits sec ~off:doff ~bitpos:(l * bits) ~bits))))
      end
    | 2 ->
      let nruns = Encoding.get_u32 sec poff in
      let roff = poff + 4 in
      let ri = ref 0 and rend = ref 0 and rkeep = ref false in
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sel i in
        let l = s - base in
        while l >= !rend && !ri < nruns do
          let ro = roff + (!ri * 12) in
          rkeep := keep_i (Int64.to_int (Bytes.get_int64_le sec ro));
          rend := !rend + Encoding.get_u32 sec (ro + 8);
          incr ri
        done;
        if !rkeep && not (isnull l) then begin
          Array.unsafe_set sel !m s;
          incr m
        end
      done;
      !m
    | _ -> invalid_arg "Colstore: corrupt cold section"
  in
  match catom with
  | K_none -> 0
  | K_null _ -> (
    match ntag with
    | 0 -> 0
    | 1 -> n
    | _ -> filter_by isnull)
  | K_not_null _ -> (
    match ntag with
    | 0 -> n
    | 1 -> 0
    | _ -> filter_by (fun l -> not (isnull l)))
  | K_int (_, lt, eq, gt, k) | K_code (_, lt, eq, gt, k) ->
    numeric (fun v -> if v < k then lt else if v = k then eq else gt) (fun _ -> false)
  | K_float (_, lt, eq, gt, k) -> (
    let keep_f v =
      let c = Float.compare v k in
      if c < 0 then lt else if c = 0 then eq else gt
    in
    (* float payloads are IEEE bit patterns: raw64 or RLE only *)
    match Encoding.data_tag sec with
    | 0 ->
      filter_by (fun l ->
          (not (isnull l))
          && keep_f (Int64.float_of_bits (Bytes.get_int64_le sec (poff + (8 * l)))))
    | 2 ->
      let nruns = Encoding.get_u32 sec poff in
      let roff = poff + 4 in
      let ri = ref 0 and rend = ref 0 and rkeep = ref false in
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = Array.unsafe_get sel i in
        let l = s - base in
        while l >= !rend && !ri < nruns do
          let ro = roff + (!ri * 12) in
          rkeep := keep_f (Int64.float_of_bits (Bytes.get_int64_le sec ro));
          rend := !rend + Encoding.get_u32 sec (ro + 8);
          incr ri
        done;
        if !rkeep && not (isnull l) then begin
          Array.unsafe_set sel !m s;
          incr m
        end
      done;
      !m
    | _ -> invalid_arg "Colstore: corrupt float cold section")

(* Selection vector for one chunk: live rows passing every atom,
   ascending slot order.  [sel] must have room for [chunk_rows].  Cold
   chunks are evaluated directly on their encoded sections — one
   section copy per referenced column, counted (chunk-granular) in
   [stats] — and stay cold; atom-less visits of cold chunks touch the
   resident live bitmap only. *)
let select_chunk ?stats t catoms chunk sel =
  let ch = t.chunks.(chunk) in
  ch.refbit <- true;
  let n = ref (fill_live t chunk sel) in
  let base = chunk * t.chunk_rows in
  let k = Array.length catoms in
  (if !n > 0 && k > 0 then
     match ch.tier with
     | Hot h ->
       let i = ref 0 in
       while !n > 0 && !i < k do
         n := refine_hot h ~base catoms.(!i) sel !n;
         incr i
       done
     | Cold { c_off; _ } ->
       let secs = Array.make (Array.length t.cols) None in
       let counted = ref false in
       let sec_of ci =
         match secs.(ci) with
         | Some s -> s
         | None ->
           let s = fault_section ?stats ~counted t c_off ci in
           secs.(ci) <- Some s;
           s
       in
       let i = ref 0 in
       while !n > 0 && !i < k do
         let ka = catoms.(!i) in
         (match ka with
         | K_none -> n := 0
         | _ ->
           n := refine_cold (sec_of (catom_col ka)) ~rows:t.chunk_rows ~base ka sel !n);
         incr i
       done);
  !n

(* ------------------------------------------------------------------ *)
(* Direct column access (join-key extraction)                          *)
(* ------------------------------------------------------------------ *)

let int_key_col t ci =
  ci >= 0 && ci < Array.length t.cols && t.cols.(ci).dtype = Dtype.Tint

let str_key_col t ci =
  ci >= 0 && ci < Array.length t.cols && t.cols.(ci).dtype = Dtype.Tstr

(* Per-scan decode scratch: one chunk-column of ints plus a null
   bitmap, reused across cold chunks so key extraction allocates
   nothing per chunk. *)
type reader = { r_ints : int array; r_nulls : Bytes.t }

let reader t =
  { r_ints = Array.make t.chunk_rows 0; r_nulls = Bytes.make (bitmap_bytes t.chunk_rows) '\000' }

let key_chunk ?stats t (r : reader) ci chunk =
  let base = chunk * t.chunk_rows in
  let ch = t.chunks.(chunk) in
  ch.refbit <- true;
  match ch.tier with
  | Hot h when Array.length h > 0 -> (
    let hc = h.(ci) in
    match hc.hdata with
    | D_int a -> (a, hc.hnulls, base)
    | D_float _ | D_bool _ -> invalid_arg "Colstore.key_chunk: not a key column")
  | Hot _ ->
    (* unallocated: no DML ever touched the chunk, nothing is live *)
    Bytes.fill r.r_nulls 0 (Bytes.length r.r_nulls) '\255';
    (r.r_ints, r.r_nulls, base)
  | Cold { c_off; _ } ->
    let counted = ref false in
    let sec = fault_section ?stats ~counted t c_off ci in
    Encoding.decode_ints_into sec ~n:t.chunk_rows r.r_ints;
    Encoding.decode_nulls_into sec ~n:t.chunk_rows r.r_nulls;
    (r.r_ints, r.r_nulls, base)

let is_live t rid = rid < t.hi && bit_get t.live rid
