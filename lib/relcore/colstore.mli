(** Two-tier columnar chunk mirror of the slotted heap: hot chunks are
    per-column unboxed arrays with null bitmaps; cold chunks are
    encoded blocks (frame-of-reference/bit-packed ints, RLE, packed
    null bitmaps, dictionary codes for strings) in an unlinked
    mmap-backed spill file, evicted under the [XNFDB_COLSTORE_MB]
    budget with a clock sweep.  Positional with heap slots, so
    chunk-ascending scans visit rows in heap-scan order and the row
    store remains a byte-identical fallback.  Zone maps, the live
    bitmap and per-chunk live counts always stay resident and double as
    the block index: a chunk pruned by zones or join-filter ranges is
    never decoded or faulted in.  Maintenance runs inside the same
    {!Base_table} mutations that bump {!Heap.version}, so version-keyed
    caches invalidate any snapshot of zone-derived data automatically. *)

type t

val enabled : unit -> bool
(** The [XNFDB_COLSTORE] knob (default on; "0"/"false"/"off"/"no"
    disable).  Gates {e use} of the columnar path only — maintenance is
    always on, so the knob can be flipped mid-process. *)

val budget_bytes : unit -> int
(** The [XNFDB_COLSTORE_MB] knob as bytes: the per-table hot-tier
    budget.  0 (the default) disables spilling — every chunk stays
    hot. *)

val encode_enabled : unit -> bool
(** The [XNFDB_COLSTORE_ENC] knob (default on).  When off, cold blocks
    are stored raw (uncompressed) — the no-encoding spill baseline. *)

val block_index_enabled : unit -> bool
(** The [XNFDB_COLSTORE_BLOCKIDX] knob (default on).  When off, zone
    maps stop acting as a block index over the spill file: cold chunks
    are always faulted and evaluated.  Hot-chunk pruning is untouched.
    Ablation knob for the naive-spill baseline. *)

val create : Schema.t -> t
(** Chunk size comes from [XNFDB_CHUNK_ROWS] (default 1024, min 16). *)

val chunk_rows : t -> int
val n_chunks : t -> int
(** Chunks covering every slot ever used (mirrors {!Heap.capacity}). *)

val live_in_chunk : t -> int -> int

val clear : t -> unit
(** Reset to empty, keeping the string dictionary.  Drops all chunk
    arrays and closes the spill file (its storage is reclaimed — the
    file is unlinked at creation). *)

val release : t -> unit
(** Drop tier state and close the spill file for good (DDL drop).
    Idempotent; also registered as a GC finaliser so unreferenced
    stores cannot leak a spill mapping. *)

(** {1 Maintenance} — called by {!Base_table} on every DML. *)

val insert : t -> Heap.rid -> Tuple.t -> unit
val delete : t -> Heap.rid -> Tuple.t -> unit
(** The tuple is the old row (needed to retire its zone contribution).
    Deletes touch only resident state — a cold chunk stays cold. *)

val update : t -> Heap.rid -> old:Tuple.t -> Tuple.t -> unit

(** {1 Predicate atoms}

    An [atom] is one conjunct of a scan predicate restricted to
    column-vs-constant shape.  {!compile} turns a conjunction into
    chunk kernels; it fails (returns [None]) when any atom needs
    semantics the unboxed loops cannot reproduce exactly — the caller
    keeps such conjuncts in its residual row predicate. *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type atom =
  | A_cmp of int * cmp * Value.t
  | A_is_null of int
  | A_not_null of int

type catom

val compile_atom : t -> atom -> catom option
val compile : t -> atom list -> catom array option

val prune_chunk : t -> catom array -> int -> bool
(** Conservative: [true] means the zone maps certify no row of the
    chunk can pass the conjunction.  Reads only resident state — never
    faults a cold chunk in. *)

(** {1 Scan-side fault accounting}

    Read paths never bump process-wide counters directly (parallel
    workers would race); they accumulate into a caller-owned
    [scan_stats] that the executor folds into its context and
    {!add_totals}. *)

type scan_stats = { mutable faulted : int; mutable fbytes : int }

val scan_stats : unit -> scan_stats

val select_chunk : ?stats:scan_stats -> t -> catom array -> int -> int array -> int
(** [select_chunk t katoms chunk sel] fills [sel] with the slot ids of
    live rows passing every atom, ascending, and returns the count.
    [sel] must have room for {!chunk_rows} entries.  Cold chunks are
    evaluated directly on their encoded sections (constant/FOR compare,
    RLE run skipping) and stay cold; each referenced column's section
    copy is counted in [stats]. *)

val pin : t -> int -> unit
(** Exclude chunk [c] from eviction while a scan holds its arrays or
    sections.  Counted; pair every {!pin} with an {!unpin}. *)

val unpin : t -> int -> unit

(** {1 Direct column access} (join-key extraction) *)

val int_key_col : t -> int -> bool
(** Whether column [ci] is [Tint] — extractable via {!key_chunk}. *)

val str_key_col : t -> int -> bool
(** Whether column [ci] is [Tstr] — {!key_chunk} then yields dictionary
    codes (equality only; see {!dict_string}). *)

type reader
(** Per-scan decode scratch for {!key_chunk}, reused across cold chunks
    so key extraction allocates nothing per chunk. *)

val reader : t -> reader

val key_chunk : ?stats:scan_stats -> t -> reader -> int -> int -> int array * Bytes.t * int
(** [key_chunk t r ci chunk] is [(data, nulls, base)]: the ints (or
    dictionary codes) and null bitmap of column [ci] in [chunk],
    indexed chunk-locally — cell of slot [s] is [data.(s - base)].  Hot
    chunks return their backing arrays; cold chunks decode into [r]
    (invalidated by the next call on [r]) and count the section copy in
    [stats].  Only slots where {!is_live} holds are meaningful. *)

val bit_get : Bytes.t -> int -> bool
(** Test bit [i] of a bitmap returned by {!key_chunk}. *)

val is_live : t -> Heap.rid -> bool

(** {1 Dictionary} *)

val dict_find : t -> string -> int option
val dict_size : t -> int
val dict_string : t -> int -> string

(** {1 Column statistics} (planner selectivity) *)

val col_range : t -> int -> (Value.t * Value.t) option
(** Aggregated zone bounds of a numeric column over live rows; possibly
    conservative (never narrower than the data).  [None] for strings,
    bools, and all-null/empty columns. *)

val col_null_count : t -> int -> int
(** Live rows holding NULL in the column. *)

val col_tight : t -> int -> bool
(** Whether every chunk's bounds are exact (no un-retired widening). *)

(** {1 Tier gauges} *)

val resident_bytes : t -> int
(** Bytes held by materialized hot chunks of this store. *)

val spilled_bytes : t -> int
(** Encoded bytes currently in this store's spill file. *)

val cold_chunks : t -> int
val hot_chunk_bytes : t -> int
(** Hot bytes per materialized chunk (a schema constant). *)

val cold_fraction : t -> float
(** Fraction of used chunks currently cold — the planner's cold-access
    signal.  0 whenever spilling is off. *)

val global_resident_bytes : unit -> int
val global_spilled_bytes : unit -> int
(** Process-wide tier gauges across every live store (bench metadata). *)

(** {1 Encodings} (exposed for property tests) *)

module Encoding : sig
  val encode_ints : ?raw:bool -> int array -> null:(int -> bool) -> live:(int -> bool) -> Bytes.t
  (** Encode one chunk-column of ints.  [raw] forces the uncompressed
      layout; otherwise the smallest of raw64 / frame-of-reference /
      RLE is chosen.  Dead and NULL cells are don't-care (normalized to
      the nearest preceding live value). *)

  val decode_ints : Bytes.t -> n:int -> int array * Bytes.t
  (** [(values, null_bitmap)] for all [n] positions; cells that were
      dead or NULL at encode time hold the encoder's filler value. *)

  val encode_floats : ?raw:bool -> float array -> null:(int -> bool) -> live:(int -> bool) -> Bytes.t
  (** Floats are stored as IEEE bit patterns (raw64 or RLE — no FOR),
      so NaN payloads and [-0.0] round-trip bit-exactly. *)

  val decode_floats : Bytes.t -> n:int -> float array * Bytes.t

  val data_tag : Bytes.t -> int
  (** 0 raw64, 1 frame-of-reference, 2 RLE. *)
end

(** {1 Process-wide counters} (surfaced by [explain]) *)

type counters = {
  mutable chunks_scanned : int;
  mutable chunks_skipped : int;
  mutable rows_materialized : int;
  mutable chunks_encoded : int;
  mutable chunks_decoded : int;
  mutable chunks_faulted : int;
  mutable chunks_evicted : int;
  mutable bytes_spilled : int;
  mutable bytes_faulted : int;
}

val totals : counters

val add_totals :
  ?faulted:int -> ?fbytes:int -> scanned:int -> skipped:int -> materialized:int -> unit -> unit
