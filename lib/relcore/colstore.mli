(** Columnar chunk mirror of the slotted heap: per-column unboxed
    arrays, null bitmaps, a dictionary for strings, and per-chunk zone
    maps.  Positional with heap slots, so chunk-ascending scans visit
    rows in heap-scan order and the row store remains a byte-identical
    fallback.  Maintenance runs inside the same {!Base_table} mutations
    that bump {!Heap.version}, so version-keyed caches invalidate any
    snapshot of zone-derived data automatically. *)

type t

val enabled : unit -> bool
(** The [XNFDB_COLSTORE] knob (default on; "0"/"false"/"off"/"no"
    disable).  Gates {e use} of the columnar path only — maintenance is
    always on, so the knob can be flipped mid-process. *)

val create : Schema.t -> t
(** Chunk size comes from [XNFDB_CHUNK_ROWS] (default 1024, min 16). *)

val chunk_rows : t -> int
val n_chunks : t -> int
(** Chunks covering every slot ever used (mirrors {!Heap.capacity}). *)

val live_in_chunk : t -> int -> int

val clear : t -> unit
(** Reset to empty, keeping allocated capacity and the string
    dictionary. *)

(** {1 Maintenance} — called by {!Base_table} on every DML. *)

val insert : t -> Heap.rid -> Tuple.t -> unit
val delete : t -> Heap.rid -> Tuple.t -> unit
(** The tuple is the old row (needed to retire its zone contribution). *)

val update : t -> Heap.rid -> old:Tuple.t -> Tuple.t -> unit

(** {1 Predicate atoms}

    An [atom] is one conjunct of a scan predicate restricted to
    column-vs-constant shape.  {!compile} turns a conjunction into
    chunk kernels; it fails (returns [None]) when any atom needs
    semantics the unboxed loops cannot reproduce exactly — the caller
    keeps such conjuncts in its residual row predicate. *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type atom =
  | A_cmp of int * cmp * Value.t
  | A_is_null of int
  | A_not_null of int

type catom

val compile_atom : t -> atom -> catom option
val compile : t -> atom list -> catom array option

val prune_chunk : t -> catom array -> int -> bool
(** Conservative: [true] means the zone maps certify no row of the
    chunk can pass the conjunction. *)

val select_chunk : t -> catom array -> int -> int array -> int
(** [select_chunk t katoms chunk sel] fills [sel] with the slot ids of
    live rows passing every atom, ascending, and returns the count.
    [sel] must have room for {!chunk_rows} entries. *)

(** {1 Direct column access} *)

val int_column : t -> int -> (int array * Bytes.t) option
(** Unboxed ints + null bitmap of a [Tint] column ([None] otherwise).
    Only slots where the live bitmap is set are meaningful; the array
    is replaced on growth, so don't cache it across DML. *)

val str_code_column : t -> int -> (int array * Bytes.t) option
(** Dictionary codes + null bitmap of a [Tstr] column ([None]
    otherwise).  Codes index this table's dictionary ({!dict_string})
    and follow insertion order, not collation — equality only.  Same
    caching caveats as {!int_column}. *)

val bit_get : Bytes.t -> int -> bool
(** Test bit [i] of a bitmap returned by {!int_column}. *)

val is_live : t -> Heap.rid -> bool

(** {1 Dictionary} *)

val dict_find : t -> string -> int option
val dict_size : t -> int
val dict_string : t -> int -> string

(** {1 Column statistics} (planner selectivity) *)

val col_range : t -> int -> (Value.t * Value.t) option
(** Aggregated zone bounds of a numeric column over live rows; possibly
    conservative (never narrower than the data).  [None] for strings,
    bools, and all-null/empty columns. *)

val col_null_count : t -> int -> int
(** Live rows holding NULL in the column. *)

val col_tight : t -> int -> bool
(** Whether every chunk's bounds are exact (no un-retired widening). *)

(** {1 Process-wide counters} (surfaced by [explain]) *)

type counters = {
  mutable chunks_scanned : int;
  mutable chunks_skipped : int;
  mutable rows_materialized : int;
}

val totals : counters
val add_totals : scanned:int -> skipped:int -> materialized:int -> unit
