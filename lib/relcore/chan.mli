(** Bounded multi-producer single-consumer channel: the inter-domain
    table queue.  Producers block when the buffer is full (flow
    control); the consumer blocks when it is empty; [close] ends the
    stream — [pop] drains what remains, then returns [None]. *)

exception Closed
(** Raised by {!push} on a closed channel. *)

type 'a t

val create : capacity:int -> 'a t
(** A channel holding at most [capacity] in-flight elements.
    @raise Invalid_argument if [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
(** Blocks while full.  @raise Closed if the channel was closed. *)

val pop : 'a t -> 'a option
(** Blocks while empty and open; [None] once closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking {!pop}: [None] when the buffer is currently empty
    (whether or not the channel is closed).  For event loops that must
    never sleep on one channel — pair with {!is_closed} to tell a
    drained-and-closed channel from a merely idle one. *)

val length : 'a t -> int
(** Number of in-flight elements (the consumer-visible queue depth). *)

val is_closed : 'a t -> bool
(** Whether {!close} has been called (elements may still remain). *)

val close : 'a t -> unit
(** Mark end-of-stream and wake all blocked producers/consumers. *)
