(** Bounded multi-producer single-consumer channel: the inter-domain
    table queue.  Producers block when the buffer is full (flow
    control); the consumer blocks when it is empty; [close] ends the
    stream — [pop] drains what remains, then returns [None]. *)

exception Closed
(** Raised by {!push} on a closed channel. *)

type 'a t

val create : capacity:int -> 'a t
(** A channel holding at most [capacity] in-flight elements.
    @raise Invalid_argument if [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
(** Blocks while full.  @raise Closed if the channel was closed. *)

val pop : 'a t -> 'a option
(** Blocks while empty and open; [None] once closed and drained. *)

val close : 'a t -> unit
(** Mark end-of-stream and wake all blocked producers/consumers. *)
