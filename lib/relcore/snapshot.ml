(** MVCC-lite snapshot epochs over the per-table version counters and
    retained delta (undo) logs.

    A {e publish} marks each touched table's current version as
    committed; a {e pin} captures the committed-version vector of every
    table in a catalog.  Both run under one global mutex, so a pinned
    vector is always a commit-consistent cut: it can never observe half
    of a multi-table commit.

    Readers materialize a table's rows at the pinned version lazily via
    {!rows}: a consistent copy of the slot array with post-pin changes
    patched back to their pre-images out of the heap's delta log
    ({!Heap.frozen_at}).  Writers never block on readers and readers
    never take the process rwlock.  When the bounded log can no longer
    answer for a pinned version (overflow past it, or a rollback hole),
    {!rows} raises {!Stale} and the caller falls back to a locked read
    — snapshot reads are an optimization, never load-bearing for
    correctness. *)

exception Stale

(* One global publication lock: commits publish their touched tables and
   pins capture version vectors under it, making every pin a
   commit-consistent cut across tables. *)
let publish_mu = Mutex.create ()

let epochs_pinned = Atomic.make 0
let epochs_released = Atomic.make 0
let stale_fallbacks = Atomic.make 0
let epoch_ctr = Atomic.make 0

(** [XNFDB_SNAPSHOT]: snapshot-isolated reads (default on).  [0] turns
    the server's lock-free read path off entirely; reads then serialize
    behind the process rwlock exactly as before. *)
let enabled () =
  match Sys.getenv_opt "XNFDB_SNAPSHOT" with
  | Some "0" | Some "false" | Some "off" -> false
  | _ -> true

let publish tables =
  Mutex.protect publish_mu (fun () ->
      List.iter Base_table.mark_committed tables)

(** Bump every table's version and publish the results in one critical
    section (the txn-boundary primitive): a concurrent {!pin} — or any
    version-vector capture under {!publish_mu} — sees all of the txn's
    tables moved, or none. *)
let bump_and_publish tables =
  Mutex.protect publish_mu (fun () ->
      List.iter
        (fun t ->
          Base_table.bump_version t;
          Base_table.mark_committed t)
        tables)

let publish_catalog cat = publish (Catalog.tables cat)

type t = {
  epoch : int; (* process-unique pin id, for stats / diagnostics *)
  versions : (int, int) Hashtbl.t; (* tid -> pinned committed version *)
  frozen : (int, Tuple.t option array) Hashtbl.t; (* tid -> pre-image *)
  fmu : Mutex.t; (* parallel scan workers race the lazy freeze *)
}

let pin cat =
  Mutex.protect publish_mu (fun () ->
      let tables = Catalog.tables cat in
      let versions = Hashtbl.create (max 8 (List.length tables)) in
      List.iter
        (fun t ->
          Hashtbl.replace versions (Base_table.tid t)
            (Base_table.committed_version t))
        tables;
      Atomic.incr epochs_pinned;
      {
        epoch = Atomic.fetch_and_add epoch_ctr 1;
        versions;
        frozen = Hashtbl.create 8;
        fmu = Mutex.create ();
      })

let epoch s = s.epoch

(* Epoch accounting only: frozen arrays are plain GC'd values and the
   undo window is bounded by the delta-log capacity, not by open pins. *)
let release _s = Atomic.incr epochs_released

(** Rows of [table] at the pinned epoch, as a slot-indexed array
    ([None] = tombstone).  Computed once per (pin, table) and cached;
    raises {!Stale} when the undo window cannot reconstruct the pinned
    version (caller falls back to a locked read). *)
let rows s table =
  let tid = Base_table.tid table in
  Mutex.protect s.fmu (fun () ->
      match Hashtbl.find_opt s.frozen tid with
      | Some arr -> arr
      | None ->
        let v =
          match Hashtbl.find_opt s.versions tid with
          | Some v -> v
          | None ->
            (* table created after the pin: unanswerable *)
            Atomic.incr stale_fallbacks;
            raise Stale
        in
        (match Base_table.frozen_at table v with
        | Some arr ->
          Hashtbl.add s.frozen tid arr;
          arr
        | None ->
          Atomic.incr stale_fallbacks;
          raise Stale))

(** Total bytes retained across every table's undo window. *)
let undo_bytes_all cat =
  List.fold_left
    (fun acc t -> acc + Base_table.undo_bytes t)
    0 (Catalog.tables cat)

let pinned () = Atomic.get epochs_pinned
let released () = Atomic.get epochs_released
let fallbacks () = Atomic.get stale_fallbacks
