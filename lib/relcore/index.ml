(** Hash index over a base table.

    Maps a key (the sub-tuple of the indexed columns) to the set of rids
    holding that key.  Supports unique and non-unique variants.

    Postings are growable int arrays rather than lists: probing with
    {!iter} allocates nothing, which matters on the index-join hot path
    where every outer row probes.  Postings are kept rid-sorted
    ascending, so the index layout is a pure function of the current row
    set — MVCC-lite snapshot readers can reproduce the exact probe order
    from a frozen slot array alone, with no insertion history.  {!iter}
    and {!lookup} walk descending rid; for append-only tables that is
    the same newest-first order the historical cons-list produced, so
    result orderings (and CO-view byte identity) are unchanged there. *)

type posting = { mutable rids : Heap.rid array; mutable n : int }

type t = {
  name : string;
  key_columns : int array; (* positions within the table schema *)
  unique : bool;
  entries : posting Tuple.Tbl.t;
}

let create ~name ~key_columns ~unique =
  { name; key_columns; unique; entries = Tuple.Tbl.create 64 }

let clear idx = Tuple.Tbl.reset idx.entries

let key_of idx tuple = Tuple.key tuple idx.key_columns

(** Descending rid (newest-first for append-only tables). *)
let iter idx key f =
  match Tuple.Tbl.find_opt idx.entries key with
  | None -> ()
  | Some p ->
    for i = p.n - 1 downto 0 do
      f p.rids.(i)
    done

(** Walk every posting, ascending rid within each key — the order
    {!iter} reverses.  Gives delta maintenance the exact posting layout
    so later inserts/removals replay byte-identically. *)
let iter_postings idx f =
  Tuple.Tbl.iter
    (fun key p ->
      for i = 0 to p.n - 1 do
        f key i p.rids.(i)
      done)
    idx.entries

let lookup idx key =
  match Tuple.Tbl.find_opt idx.entries key with
  | None -> []
  | Some p ->
    let acc = ref [] in
    for i = 0 to p.n - 1 do
      acc := p.rids.(i) :: !acc
    done;
    !acc

let lookup_tuple idx tuple = lookup idx (key_of idx tuple)

let mem idx key =
  match Tuple.Tbl.find_opt idx.entries key with
  | Some p -> p.n > 0
  | None -> false

let mem_tuple idx tuple = mem idx (key_of idx tuple)

let insert idx rid tuple =
  let key = key_of idx tuple in
  match Tuple.Tbl.find_opt idx.entries key with
  | Some p ->
    if idx.unique && p.n > 0 then
      Errors.constraint_error "unique index %S violated by key %s" idx.name
        (Tuple.to_string key);
    if p.n = Array.length p.rids then begin
      let bigger = Array.make (2 * p.n) 0 in
      Array.blit p.rids 0 bigger 0 p.n;
      p.rids <- bigger
    end;
    (* sorted insertion keeps the posting rid-ascending; fresh rids are
       almost always the largest seen, so the common case is an O(1)
       append and the shift only pays on slot recycling *)
    let i = ref p.n in
    while !i > 0 && p.rids.(!i - 1) > rid do
      p.rids.(!i) <- p.rids.(!i - 1);
      decr i
    done;
    p.rids.(!i) <- rid;
    p.n <- p.n + 1
  | None ->
    let rids = Array.make 2 0 in
    rids.(0) <- rid;
    Tuple.Tbl.add idx.entries key { rids; n = 1 }

let remove idx rid tuple =
  let key = key_of idx tuple in
  match Tuple.Tbl.find_opt idx.entries key with
  | None -> ()
  | Some p ->
    let k = ref 0 in
    for i = 0 to p.n - 1 do
      if p.rids.(i) <> rid then begin
        p.rids.(!k) <- p.rids.(i);
        incr k
      end
    done;
    p.n <- !k;
    if p.n = 0 then Tuple.Tbl.remove idx.entries key

let cardinality idx = Tuple.Tbl.length idx.entries
