(** Slotted in-memory row store.

    Rows live in stable slots identified by a row id (rid).  Deletion
    tombstones the slot (rid stability is what the composite-object
    cache's tuple identifiers rely on); freed slots are recycled by
    subsequent inserts. *)

type rid = int

type t = {
  slots : Tuple.t option Vec.t;
  free : int Vec.t; (* stack of tombstoned slots available for reuse *)
  mutable live : int;
  mutable version : int;
      (* monotonic mutation counter: every insert/update/delete bumps it,
         so (heap, version) identifies a snapshot of the contents.
         Versions never repeat — undoing a change still moves forward. *)
}

let create () =
  {
    slots = Vec.create ~dummy:None;
    free = Vec.create ~dummy:(-1);
    live = 0;
    version = 0;
  }

let cardinality h = h.live
let version h = h.version
let touch h = h.version <- h.version + 1

(** Number of slots ever allocated (live + tombstoned). *)
let capacity h = Vec.length h.slots

let insert h tuple =
  touch h;
  h.live <- h.live + 1;
  if Vec.length h.free > 0 then begin
    let rid = Vec.pop h.free in
    Vec.set h.slots rid (Some tuple);
    rid
  end
  else begin
    Vec.push h.slots (Some tuple);
    Vec.length h.slots - 1
  end

let get h rid =
  if rid < 0 || rid >= Vec.length h.slots then None else Vec.get h.slots rid

let get_exn h rid =
  match get h rid with
  | Some t -> t
  | None -> Errors.execution_error "dangling rid %d" rid

let update h rid tuple =
  match get h rid with
  | Some _ ->
    touch h;
    Vec.set h.slots rid (Some tuple)
  | None -> Errors.execution_error "update of dangling rid %d" rid

let delete h rid =
  match get h rid with
  | Some _ ->
    touch h;
    Vec.set h.slots rid None;
    Vec.push h.free rid;
    h.live <- h.live - 1
  | None -> Errors.execution_error "delete of dangling rid %d" rid

let iter f h =
  Vec.iteri (fun rid slot -> match slot with Some t -> f rid t | None -> ()) h.slots

let fold f acc h =
  let acc = ref acc in
  iter (fun rid t -> acc := f !acc rid t) h;
  !acc

let to_list h = List.rev (fold (fun acc rid t -> (rid, t) :: acc) [] h)

(** Demand-driven scan cursor: returns [(rid, tuple)] pairs.  The cursor
    tolerates concurrent appends (sees rows added behind its position)
    and skips tombstones, like a real heap scan. *)
let scan h =
  let pos = ref 0 in
  fun () ->
    let rec go () =
      if !pos >= Vec.length h.slots then None
      else begin
        let i = !pos in
        incr pos;
        match Vec.get h.slots i with
        | Some t -> Some (i, t)
        | None -> go ()
      end
    in
    go ()

(** Batched scan: fill [out.(start .. start+max)] with live tuples
    beginning at slot [from] — no per-row pair/option allocation.
    Returns [(next_slot, n_filled)]; like {!scan}, tolerates concurrent
    appends and skips tombstones. *)
let scan_into ?filter h ~from (out : Tuple.t array) ~start ~max =
  let pos = ref from and k = ref start in
  let stop = start + max in
  (match filter with
  | None ->
    while !k < stop && !pos < Vec.length h.slots do
      (match Vec.get h.slots !pos with
      | Some t ->
        out.(!k) <- t;
        incr k
      | None -> ());
      incr pos
    done
  | Some keep ->
    (* push-down filter (e.g. a sideways join filter): visited live rows
       failing it are dropped before they reach the output batch *)
    while !k < stop && !pos < Vec.length h.slots do
      (match Vec.get h.slots !pos with
      | Some t ->
        if keep t then begin
          out.(!k) <- t;
          incr k
        end
      | None -> ());
      incr pos
    done);
  (!pos, !k - start)

(** Apply [f] to every live tuple in slots [lo, hi) — the morsel
    primitive for partitioned parallel scans.  Returns the number of
    live rows visited. *)
let iter_range h ~lo ~hi f =
  let hi = min hi (Vec.length h.slots) in
  let n = ref 0 in
  for i = max 0 lo to hi - 1 do
    match Vec.get h.slots i with
    | Some t ->
      f t;
      incr n
    | None -> ()
  done;
  !n
