(** Slotted in-memory row store.

    Rows live in stable slots identified by a row id (rid).  Deletion
    tombstones the slot (rid stability is what the composite-object
    cache's tuple identifiers rely on); freed slots are recycled by
    subsequent inserts. *)

type rid = int

type delta_op = D_ins of rid * Tuple.t | D_del of rid * Tuple.t

type t = {
  mu : Mutex.t;
      (* spans every slot mutation together with its delta-log append, so
         {!frozen_at} can copy the slots and read the log as one atomic
         observation while writers proceed.  Lock-free readers (plain
         scans) are unaffected: they either hold the process read lock
         (no concurrent writers) or go through {!frozen_at}. *)
  slots : Tuple.t option Vec.t;
  free : int Vec.t; (* stack of tombstoned slots available for reuse *)
  mutable live : int;
  mutable version : int;
      (* monotonic mutation counter: every insert/update/delete bumps it,
         so (heap, version) identifies a snapshot of the contents.
         Versions never repeat — undoing a change still moves forward. *)
  mutable committed_version : int;
      (* last version published by a commit (or autocommit / rollback
         completion): the snapshot boundary MVCC-lite readers pin.
         [committed_version <= version]; they differ exactly while a
         transaction holds unpublished writes. *)
  deltas : (int * delta_op) Vec.t;
      (* bounded row-delta log alongside the undo log: one (version, op)
         entry per insert/delete, two per update (delete + insert at the
         same version, keyed by slot).  [touch] logs nothing. *)
  mutable delta_floor : int;
      (* oldest version the log still reaches back to; advanced past the
         current version when the log overflows its capacity, declaring
         older snapshots unmaintainable *)
  mutable hole_lo : int;
  mutable hole_hi : int;
      (* versions discarded by [delta_rewind] (rolled-back txns): a
         snapshot taken inside [hole_lo, hole_hi) saw uncommitted state
         the log no longer records, so [deltas_since] must refuse it.
         Multiple rewinds merge conservatively (min lo, max hi).
         Empty when hole_lo > hole_hi. *)
}

(* [XNFDB_DELTA_LOG]: per-table delta-log capacity (default 4096).
   0 effectively disables maintenance: the log is clipped after every
   mutation, so only the empty delta (no DML at all) is answerable. *)
let log_capacity () =
  match Sys.getenv_opt "XNFDB_DELTA_LOG" with
  | Some s -> (match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> 4096)
  | None -> 4096

let create () =
  {
    mu = Mutex.create ();
    slots = Vec.create ~dummy:None;
    free = Vec.create ~dummy:(-1);
    live = 0;
    version = 0;
    committed_version = 0;
    deltas = Vec.create ~dummy:(0, D_del (-1, [||]));
    delta_floor = 0;
    hole_lo = max_int;
    hole_hi = min_int;
  }

let cardinality h = h.live
let version h = h.version
let touch h = h.version <- h.version + 1
let committed_version h = h.committed_version
let mark_committed h = h.committed_version <- h.version

let log_delta h op =
  Vec.push h.deltas (h.version, op);
  if Vec.length h.deltas > log_capacity () then begin
    (* overflow: drop history and declare every snapshot older than the
       current contents beyond repair *)
    Vec.clear h.deltas;
    h.delta_floor <- h.version
  end

let deltas_since_unlocked h v =
  if v < h.delta_floor || (v >= h.hole_lo && v < h.hole_hi) then None
  else
    Some
      (Vec.fold_left
         (fun acc (ver, op) -> if ver > v then (ver, op) :: acc else acc)
         [] h.deltas
      |> List.rev)

(** Row deltas logged after version [v]: [Some ops] iff the log still
    reaches back to [v] (in particular [Some []] when nothing changed);
    [None] once overflow discarded that history. *)
let deltas_since h v = Mutex.protect h.mu (fun () -> deltas_since_unlocked h v)

let delta_mark h = Vec.length h.deltas

let delta_rewind h mark =
  (* if the log overflowed after the mark was taken, the position no
     longer corresponds to the txn's entries — it can even be negative
     when the overflow hit the txn's own first write.  Clamping to 0
     stays safe: everything still logged is discarded and covered by
     the refusal hole below, so affected readers fall back. *)
  Mutex.protect h.mu (fun () ->
      let mark = max mark 0 in
      if mark < Vec.length h.deltas then begin
        (* the discarded versions saw uncommitted state: any snapshot
           taken among them is unanswerable once the entries are gone,
           while snapshots at or before the last surviving entry stay
           maintainable (the rolled-back txn is net zero for them) *)
        let first_discarded, _ = Vec.get h.deltas mark in
        h.hole_lo <- min h.hole_lo first_discarded;
        h.hole_hi <- max h.hole_hi (h.version + 1);
        Vec.truncate h.deltas mark
      end)

(** Number of slots ever allocated (live + tombstoned). *)
let capacity h = Vec.length h.slots

(** Drop every row and reset slot allocation, so refilling scans in
    insertion order exactly like a fresh heap (tombstone-and-recycle
    would reverse it via the free stack).  Snapshots from before the
    clear are not delta-replayable: the log is cleared and floored. *)
let clear h =
  Mutex.protect h.mu (fun () ->
      touch h;
      Vec.clear h.slots;
      Vec.clear h.free;
      h.live <- 0;
      Vec.clear h.deltas;
      h.delta_floor <- h.version;
      h.hole_lo <- max_int;
      h.hole_hi <- min_int)

let insert h tuple =
  Mutex.protect h.mu (fun () ->
      touch h;
      h.live <- h.live + 1;
      let rid =
        if Vec.length h.free > 0 then begin
          let rid = Vec.pop h.free in
          Vec.set h.slots rid (Some tuple);
          rid
        end
        else begin
          Vec.push h.slots (Some tuple);
          Vec.length h.slots - 1
        end
      in
      log_delta h (D_ins (rid, tuple));
      rid)

let get h rid =
  if rid < 0 || rid >= Vec.length h.slots then None else Vec.get h.slots rid

let get_exn h rid =
  match get h rid with
  | Some t -> t
  | None -> Errors.execution_error "dangling rid %d" rid

let update h rid tuple =
  Mutex.protect h.mu (fun () ->
      match get h rid with
      | Some old ->
        touch h;
        Vec.set h.slots rid (Some tuple);
        log_delta h (D_del (rid, old));
        log_delta h (D_ins (rid, tuple))
      | None -> Errors.execution_error "update of dangling rid %d" rid)

let delete h rid =
  Mutex.protect h.mu (fun () ->
      match get h rid with
      | Some old ->
        touch h;
        Vec.set h.slots rid None;
        Vec.push h.free rid;
        h.live <- h.live - 1;
        log_delta h (D_del (rid, old))
      | None -> Errors.execution_error "delete of dangling rid %d" rid)

(** Pre-image of the slot array as of version [v], reconstructed from the
    live slots and the retained delta log: [None] when the log no longer
    reaches back to [v] (overflow past it, or [v] fell in a rollback
    hole) — the caller must fall back to a locked read.

    Atomic with respect to writers: the copy and the log walk happen
    under the heap mutex every mutator holds, so the returned array is a
    consistent cut even while DML proceeds.  Patching walks the ops
    {e newest first}, rewriting each touched slot to the row content
    recorded before the oldest post-[v] change: a [D_del] restores the
    deleted/overwritten row, a [D_ins] clears the slot it filled, and
    the final state per slot is decided by the oldest op (last writer in
    the reverse walk) — exactly the pre-image. *)
let frozen_at h v : Tuple.t option array option =
  Mutex.protect h.mu (fun () ->
      match deltas_since_unlocked h v with
      | None -> None
      | Some ops ->
        let arr = Vec.to_array h.slots in
        List.iter
          (fun (_, op) ->
            match op with
            | D_ins (rid, _) -> arr.(rid) <- None
            | D_del (rid, old) -> arr.(rid) <- Some old)
          (List.rev ops);
        Some arr)

(** Approximate bytes retained by the delta log (the MVCC-lite undo
    window): header words plus the logged row payloads. *)
let undo_bytes h =
  Mutex.protect h.mu (fun () ->
      Vec.fold_left
        (fun acc (_, op) ->
          let row = match op with D_ins (_, t) | D_del (_, t) -> t in
          acc + ((4 + Array.length row) * 8))
        0 h.deltas)

let iter f h =
  Vec.iteri (fun rid slot -> match slot with Some t -> f rid t | None -> ()) h.slots

let fold f acc h =
  let acc = ref acc in
  iter (fun rid t -> acc := f !acc rid t) h;
  !acc

let to_list h = List.rev (fold (fun acc rid t -> (rid, t) :: acc) [] h)

(** Demand-driven scan cursor: returns [(rid, tuple)] pairs.  The cursor
    tolerates concurrent appends (sees rows added behind its position)
    and skips tombstones, like a real heap scan. *)
let scan h =
  let pos = ref 0 in
  fun () ->
    let rec go () =
      if !pos >= Vec.length h.slots then None
      else begin
        let i = !pos in
        incr pos;
        match Vec.get h.slots i with
        | Some t -> Some (i, t)
        | None -> go ()
      end
    in
    go ()

(** Batched scan: fill [out.(start .. start+max)] with live tuples
    beginning at slot [from] — no per-row pair/option allocation.
    Returns [(next_slot, n_filled)]; like {!scan}, tolerates concurrent
    appends and skips tombstones. *)
let scan_into ?filter h ~from (out : Tuple.t array) ~start ~max =
  let pos = ref from and k = ref start in
  let stop = start + max in
  (match filter with
  | None ->
    while !k < stop && !pos < Vec.length h.slots do
      (match Vec.get h.slots !pos with
      | Some t ->
        out.(!k) <- t;
        incr k
      | None -> ());
      incr pos
    done
  | Some keep ->
    (* push-down filter (e.g. a sideways join filter): visited live rows
       failing it are dropped before they reach the output batch *)
    while !k < stop && !pos < Vec.length h.slots do
      (match Vec.get h.slots !pos with
      | Some t ->
        if keep t then begin
          out.(!k) <- t;
          incr k
        end
      | None -> ());
      incr pos
    done);
  (!pos, !k - start)

(** Apply [f] to every live tuple in slots [lo, hi) — the morsel
    primitive for partitioned parallel scans.  Returns the number of
    live rows visited. *)
let iter_range h ~lo ~hi f =
  let hi = min hi (Vec.length h.slots) in
  let n = ref 0 in
  for i = max 0 lo to hi - 1 do
    match Vec.get h.slots i with
    | Some t ->
      f t;
      incr n
    | None -> ()
  done;
  !n
