(** MVCC-lite snapshot epochs: commit-consistent pins over the per-table
    committed-version counters, materialized lazily from the heaps'
    retained delta (undo) logs.  Readers never take the process rwlock;
    writers never wait for readers.  When the bounded undo window cannot
    reconstruct a pinned version, {!rows} raises {!Stale} and the caller
    falls back to a locked read. *)

exception Stale

val publish_mu : Mutex.t
(** The global publication lock {!publish} and {!pin} serialize on. *)

val enabled : unit -> bool
(** [XNFDB_SNAPSHOT] knob (default on). *)

val publish : Base_table.t list -> unit
(** Mark each table's current version as committed, atomically with
    respect to {!pin}. *)

val bump_and_publish : Base_table.t list -> unit
(** Advance every table's version {e and} publish it in one critical
    section — the txn-boundary invalidation point.  Concurrent pins and
    version-vector captures see the whole commit or none of it. *)

val publish_catalog : Catalog.t -> unit
(** {!publish} every table of the catalog (bulk-load / server boot). *)

type t
(** A pinned snapshot epoch. *)

val pin : Catalog.t -> t
(** Capture the committed-version vector of every table — a
    commit-consistent cut. *)

val epoch : t -> int
(** Process-unique pin id. *)

val release : t -> unit
(** Epoch accounting; frozen row arrays are reclaimed by the GC. *)

val rows : t -> Base_table.t -> Tuple.t option array
(** Slot-indexed rows of the table at the pinned epoch ([None] =
    tombstone), computed once per (pin, table) and cached.
    @raise Stale when the undo window cannot answer for the pin. *)

val undo_bytes_all : Catalog.t -> int
(** Total approximate bytes retained across every table's undo window. *)

val pinned : unit -> int
val released : unit -> int
val fallbacks : unit -> int
(** Process counters: epochs pinned, released, and stale fallbacks. *)
