(** Shared domain pool — the process-wide worker team behind parallel
    table-queue execution.

    Worker domains are spawned lazily (up to the requested parallelism)
    and kept for the life of the process, blocked on a task queue; every
    parallel query execution reuses them, so per-query domain spawn cost
    is paid once.  The pool is sized by [XNFDB_DOMAINS] (default: the
    runtime's recommended domain count, i.e. the physical cores).

    Nesting is safe by construction: a task that itself calls {!run}
    detects it is already on a pool worker and executes its subtasks
    inline instead of re-entering the queue, so the pool can never
    deadlock on its own tasks. *)

(** Configured parallelism: [XNFDB_DOMAINS], or the hardware's
    recommended domain count. *)
let default_domains () =
  match Option.bind (Sys.getenv_opt "XNFDB_DOMAINS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> Domain.recommended_domain_count ()

(* hard cap on pool size: a guard against runaway XNFDB_DOMAINS values,
   not a tuning knob *)
let max_workers = 128

let mutex = Mutex.create ()
let nonempty = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let n_workers = ref 0

(* set on pool worker domains; {!run} from inside a worker degrades to
   inline execution *)
let on_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get on_worker

let worker_main () =
  Domain.DLS.set on_worker true;
  let rec loop () =
    Mutex.lock mutex;
    while Queue.is_empty queue do
      Condition.wait nonempty mutex
    done;
    let task = Queue.pop queue in
    Mutex.unlock mutex;
    task ();
    loop ()
  in
  loop ()

(* workers are daemons: handles are dropped, the process exits without
   joining them *)
let ensure_workers n =
  let n = min n max_workers in
  Mutex.lock mutex;
  let missing = n - !n_workers in
  n_workers := max !n_workers n;
  Mutex.unlock mutex;
  for _ = 1 to missing do
    ignore (Domain.spawn worker_main : unit Domain.t)
  done

type handle = {
  mutable remaining : int;
  mutable error : exn option;
  hm : Mutex.t;
  hc : Condition.t;
}

(** Enqueue [n] tasks [f 0 .. f (n-1)] on pool workers and return
    immediately; the caller does not participate.  Used when the caller
    has its own job — e.g. consuming a {!Chan} the tasks produce into. *)
let launch ~n (f : int -> unit) : handle =
  let h = { remaining = n; error = None; hm = Mutex.create (); hc = Condition.create () } in
  if n <= 0 then h
  else begin
    ensure_workers n;
    Mutex.lock mutex;
    for i = 0 to n - 1 do
      Queue.push
        (fun () ->
          (try f i
           with e ->
             Mutex.lock h.hm;
             if h.error = None then h.error <- Some e;
             Mutex.unlock h.hm);
          Mutex.lock h.hm;
          h.remaining <- h.remaining - 1;
          if h.remaining = 0 then Condition.broadcast h.hc;
          Mutex.unlock h.hm)
        queue
    done;
    Condition.broadcast nonempty;
    Mutex.unlock mutex;
    h
  end

(** Wait for every task of [h]; re-raises the first task exception. *)
let await (h : handle) : unit =
  Mutex.lock h.hm;
  while h.remaining > 0 do
    Condition.wait h.hc h.hm
  done;
  Mutex.unlock h.hm;
  match h.error with Some e -> raise e | None -> ()

(** Run [f 0 .. f (domains-1)] to completion, the caller executing [f 0]
    itself.  Inline (sequential) when [domains <= 1] or when already on
    a pool worker. *)
let run ~domains (f : int -> unit) : unit =
  if domains <= 1 || in_worker () then
    for i = 0 to max 0 (domains - 1) do
      f i
    done
  else begin
    let h = launch ~n:(domains - 1) (fun i -> f (i + 1)) in
    let mine = match f 0 with () -> None | exception e -> Some e in
    (match await h with
    | () -> ()
    | exception e -> ( match mine with Some _ -> () | None -> raise e));
    match mine with Some e -> raise e | None -> ()
  end

(** Morsel-style dynamic scheduling: [domains] participants pull morsel
    indexes [0 .. morsels-1] from a shared atomic counter and run [f] on
    each — fast workers take more morsels. *)
let for_morsels ~domains ~morsels (f : int -> unit) : unit =
  if morsels > 0 then begin
    let next = Atomic.make 0 in
    run ~domains:(min domains morsels) (fun _ ->
        let rec go () =
          let m = Atomic.fetch_and_add next 1 in
          if m < morsels then begin
            f m;
            go ()
          end
        in
        go ())
  end
