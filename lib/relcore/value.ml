(** Runtime values of the relational engine.

    SQL three-valued logic is handled at the predicate-evaluation layer;
    here [Null] is just a distinguished value that compares below all
    non-null values (for sorting) and is never equal to anything under
    SQL equality (see {!sql_eq}). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ -> false

(* Exact comparison of [Int x] against [Float y].  Coercing the int with
   [float_of_int] rounds at |x| >= 2^53, which made the mixed order both
   lossy and non-transitive (Int 2^53 and Int 2^53+1 each compared equal
   to Float 2^53 but not to each other).  Instead compare in the integers:
   every float of magnitude >= 2^53 is integral, so [floor y] converts
   exactly whenever it is in the native int range at all.  NaN keeps its
   [Float.compare] position below every number. *)
let compare_int_float x y =
  if Float.is_nan y then 1
  else if y >= 0x1p62 then -1 (* y >= 2^62 > max_int *)
  else if y < -0x1p62 then 1 (* y < -2^62 = min_int *)
  else begin
    let fl = Float.floor y in
    let c = Int.compare x (int_of_float fl) in
    if c <> 0 then c else if y > fl then -1 (* x = floor y < y *) else 0
  end

(** The int that carries this float's key under {!compare}/{!hash}, if
    one exists: integral floats in the native int range.  Floats outside
    that range compare equal to no int at all. *)
let int_key_of_float f =
  if Float.is_integer f && f >= -0x1p62 && f < 0x1p62 then Some (int_of_float f)
  else None

(** Total order used for sorting and index organisation (not SQL
    comparison): Null < Bool < Int/Float (numeric order) < Str. *)
let compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ | Float _ -> 2
    | Str _ -> 3
  in
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> compare_int_float x y
  | Float x, Int y -> -compare_int_float y x
  | Str x, Str y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | Str _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(** SQL equality: [None] when either side is null (unknown). *)
let sql_eq a b =
  if is_null a || is_null b then None else Some (compare a b = 0)

(** SQL comparison: [None] when either side is null. *)
let sql_compare a b =
  if is_null a || is_null b then None else Some (compare a b)

let hash = function
  | Null -> 0
  | Bool b -> Bool.to_int b + 11
  | Int i -> Hashtbl.hash i
  | Float f ->
    (* Hash integral floats like the equal int so Int 3 and Float 3.0,
       which compare equal, also hash equal.  The range test must match
       {!compare} exactly: only floats in the native int range compare
       equal to an int (the old [abs f < 1e18] cutoff overshot the
       63-bit int range, so e.g. Float 2^62 hashed as a wrapped int
       while comparing equal to no int). *)
    (match int_key_of_float f with
    | Some i -> Hashtbl.hash i
    | None -> Hashtbl.hash f)
  | Str s -> Hashtbl.hash s

let to_string = function
  | Null -> "NULL"
  | Bool b -> if b then "TRUE" else "FALSE"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

(** SQL-literal rendering: strings get quoted and escaped. *)
let to_literal = function
  | Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | v -> to_string v

let pp fmt v = Format.pp_print_string fmt (to_string v)

let as_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | v -> Errors.type_error "expected INT, got %s" (to_string v)

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> Errors.type_error "expected FLOAT, got %s" (to_string v)

let as_string = function
  | Str s -> s
  | v -> Errors.type_error "expected STRING, got %s" (to_string v)

let as_bool = function
  | Bool b -> b
  | v -> Errors.type_error "expected BOOL, got %s" (to_string v)
