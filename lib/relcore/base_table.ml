(** A base table: schema + heap storage + secondary indexes + optional
    primary key. *)

type t = {
  name : string;
  tid : int; (* process-unique table id; names can collide across databases *)
  schema : Schema.t;
  heap : Heap.t;
  colstore : Colstore.t; (* columnar mirror of the heap's slots *)
  mutable indexes : Index.t list;
  primary_key : int array option; (* column positions *)
}

let next_tid = Atomic.make 0

let create ?primary_key ~name schema =
  let pk_positions =
    Option.map
      (fun cols -> Array.of_list (List.map (Schema.find schema) cols))
      primary_key
  in
  let t =
    {
      name;
      tid = Atomic.fetch_and_add next_tid 1;
      schema;
      heap = Heap.create ();
      colstore = Colstore.create schema;
      indexes = [];
      primary_key = pk_positions;
    }
  in
  (match pk_positions with
  | Some key_columns ->
    t.indexes <-
      [ Index.create ~name:(name ^ "_pkey") ~key_columns ~unique:true ]
  | None -> ());
  t

let name t = t.name
let tid t = t.tid
let schema t = t.schema
let cardinality t = Heap.cardinality t.heap
let version t = Heap.version t.heap
let bump_version t = Heap.touch t.heap
let committed_version t = Heap.committed_version t.heap
let mark_committed t = Heap.mark_committed t.heap
let frozen_at t v = Heap.frozen_at t.heap v
let undo_bytes t = Heap.undo_bytes t.heap
let deltas_since t v = Heap.deltas_since t.heap v
let delta_mark t = Heap.delta_mark t.heap
let delta_rewind t mark = Heap.delta_rewind t.heap mark

let find_index t idx_name =
  List.find_opt (fun i -> String.equal i.Index.name idx_name) t.indexes

(** Find an index whose key is exactly the given column positions (in
    order). *)
let index_on t positions =
  List.find_opt (fun i -> i.Index.key_columns = positions) t.indexes

let create_index t ~idx_name ~columns ~unique =
  let key_columns = Array.of_list (List.map (Schema.find t.schema) columns) in
  if List.exists (fun i -> String.equal i.Index.name idx_name) t.indexes then
    Errors.catalog_error "index %S already exists" idx_name;
  let idx = Index.create ~name:idx_name ~key_columns ~unique in
  Heap.iter (fun rid tuple -> Index.insert idx rid tuple) t.heap;
  t.indexes <- t.indexes @ [ idx ];
  idx

let insert t row =
  let tuple = Schema.validate_row t.schema row in
  (* Check uniques before touching any state so a violation leaves the
     table unchanged. *)
  List.iter
    (fun idx ->
      if idx.Index.unique && Index.mem_tuple idx tuple then
        Errors.constraint_error "unique index %S violated in table %S"
          idx.Index.name t.name)
    t.indexes;
  let rid = Heap.insert t.heap tuple in
  Colstore.insert t.colstore rid tuple;
  List.iter (fun idx -> Index.insert idx rid tuple) t.indexes;
  rid

let get t rid = Heap.get t.heap rid
let get_exn t rid = Heap.get_exn t.heap rid

let update t rid row =
  let tuple = Schema.validate_row t.schema row in
  let old_tuple = Heap.get_exn t.heap rid in
  List.iter
    (fun idx ->
      let new_key = Index.key_of idx tuple in
      if idx.Index.unique && not (Tuple.equal new_key (Index.key_of idx old_tuple))
      then
        if Index.mem idx new_key then
          Errors.constraint_error "unique index %S violated in table %S"
            idx.Index.name t.name)
    t.indexes;
  List.iter (fun idx -> Index.remove idx rid old_tuple) t.indexes;
  Heap.update t.heap rid tuple;
  Colstore.update t.colstore rid ~old:old_tuple tuple;
  List.iter (fun idx -> Index.insert idx rid tuple) t.indexes

let delete t rid =
  let old_tuple = Heap.get_exn t.heap rid in
  List.iter (fun idx -> Index.remove idx rid old_tuple) t.indexes;
  Heap.delete t.heap rid;
  Colstore.delete t.colstore rid old_tuple

let iter f t = Heap.iter f t.heap
let fold f acc t = Heap.fold f acc t.heap
let scan t = Heap.scan t.heap
let scan_into ?filter t ~from out ~start ~max =
  Heap.scan_into ?filter t.heap ~from out ~start ~max

(** Slots ever allocated — the slot-range domain that morsel scans
    partition (live rows may be fewer; tombstones are skipped). *)
let slot_count t = Heap.capacity t.heap

let iter_range t ~lo ~hi f = Heap.iter_range t.heap ~lo ~hi f
let to_list t = Heap.to_list t.heap

(** Rids whose tuples match [key] on the primary key, via the pkey index. *)
let pk_lookup t key =
  match t.primary_key with
  | None -> Errors.catalog_error "table %S has no primary key" t.name
  | Some positions ->
    (match index_on t positions with
    | Some idx -> Index.lookup idx key
    | None -> assert false)

(** Remove every row and reset slot allocation: a refilled table scans
    in insertion order exactly like a fresh one, which the fixpoint
    evaluators' reused delta tables rely on for deterministic discovery
    order. *)
let truncate t =
  Heap.clear t.heap;
  Colstore.clear t.colstore;
  List.iter Index.clear t.indexes

(** Release the columnar mirror's tier state and spill file (DDL drop).
    Idempotent — the colstore also finalises itself on GC, this just
    reclaims eagerly. *)
let release t = Colstore.release t.colstore
