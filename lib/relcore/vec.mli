(** Minimal growable array (OCaml 5.1 predates stdlib [Dynarray]). *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : dummy:'a -> 'a list -> 'a t
val truncate : 'a t -> int -> unit
(** Shrink to the first [n] elements (no-op if already shorter). *)

val exists : ('a -> bool) -> 'a t -> bool
