(** Slotted in-memory row store.

    Rows live in stable slots identified by a row id ([rid]); deletion
    tombstones the slot and the slot is recycled by later inserts. *)

type rid = int
type t

val create : unit -> t

val cardinality : t -> int
(** Live rows. *)

val capacity : t -> int
(** Slots ever allocated (live + tombstoned). *)

val version : t -> int
(** Monotonic mutation counter: bumped by every insert/update/delete (and
    by {!touch}), so [(heap, version)] identifies a snapshot of the
    contents.  Versions never repeat — undoing a change still advances. *)

val touch : t -> unit
(** Advance {!version} without changing contents (used by the txn layer
    so commit and rollback both invalidate version-keyed caches). *)

val insert : t -> Tuple.t -> rid
val get : t -> rid -> Tuple.t option
val get_exn : t -> rid -> Tuple.t
val update : t -> rid -> Tuple.t -> unit
val delete : t -> rid -> unit

val iter : (rid -> Tuple.t -> unit) -> t -> unit
val fold : ('a -> rid -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> (rid * Tuple.t) list

val scan : t -> unit -> (rid * Tuple.t) option
(** Demand-driven cursor; skips tombstones and tolerates appends behind
    its position. *)

val scan_into :
  ?filter:(Tuple.t -> bool) ->
  t ->
  from:int ->
  Tuple.t array ->
  start:int ->
  max:int ->
  int * int
(** Batched scan: fill [out.(start .. start+max)] with live tuples
    beginning at slot [from], with no per-row allocation.  Returns
    [(next_slot, n_filled)]; skips tombstones like {!scan}.  [filter]
    (a push-down predicate such as a sideways join filter) sees every
    visited live tuple and drops failing rows before the output. *)

val iter_range : t -> lo:int -> hi:int -> (Tuple.t -> unit) -> int
(** Apply [f] to every live tuple in slots [lo, hi) (the morsel
    primitive for partitioned scans); returns live rows visited. *)
