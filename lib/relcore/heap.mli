(** Slotted in-memory row store.

    Rows live in stable slots identified by a row id ([rid]); deletion
    tombstones the slot and the slot is recycled by later inserts. *)

type rid = int

type delta_op = D_ins of rid * Tuple.t | D_del of rid * Tuple.t
(** One logged row change.  An update logs [D_del old; D_ins new] at the
    same version, keyed by the same slot. *)

type t

val create : unit -> t

val cardinality : t -> int
(** Live rows. *)

val capacity : t -> int
(** Slots ever allocated (live + tombstoned). *)

val clear : t -> unit
(** Drop every row and reset slot allocation, so refilling scans in
    insertion order exactly like a fresh heap.  Clears and floors the
    delta log: snapshots from before the clear are not replayable. *)

val version : t -> int
(** Monotonic mutation counter: bumped by every insert/update/delete (and
    by {!touch}), so [(heap, version)] identifies a snapshot of the
    contents.  Versions never repeat — undoing a change still advances. *)

val touch : t -> unit
(** Advance {!version} without changing contents (used by the txn layer
    so commit and rollback both invalidate version-keyed caches).
    Logs no delta: a version gap with no logged rows means "unchanged". *)

val committed_version : t -> int
(** Last version published by {!mark_committed} — the snapshot boundary
    MVCC-lite readers pin.  Equals {!version} exactly when no
    transaction holds unpublished writes. *)

val mark_committed : t -> unit
(** Publish the current {!version} as committed.  Callers serialize
    publication across tables (see [Snapshot.publish]) so a pinned
    version vector is a commit-consistent cut. *)

val frozen_at : t -> int -> Tuple.t option array option
(** Consistent copy of the slot array as of version [v], with post-[v]
    changes patched back to their pre-images from the retained delta
    log; [None] when the log can no longer answer for [v] (overflow or
    rollback hole) and the caller must fall back to a locked read.
    Safe to call while writers mutate the heap: capture is atomic under
    the internal heap mutex. *)

val undo_bytes : t -> int
(** Approximate bytes retained by the delta log (the undo window). *)

val deltas_since : t -> int -> (int * delta_op) list option
(** Row deltas logged after version [v], oldest first: [Some []] when
    nothing changed since, [None] when the log cannot answer for [v] —
    either the bounded log (capacity [XNFDB_DELTA_LOG], default 4096)
    overflowed past [v], or [v] was taken inside a transaction whose
    entries a {!delta_rewind} later discarded.  The caller must fall
    back to recomputation. *)

val delta_mark : t -> int
(** Current delta-log position, for {!delta_rewind}. *)

val delta_rewind : t -> int -> unit
(** Truncate the delta log back to a {!delta_mark} position — used by
    the txn layer to discard a rolled-back transaction's deltas after
    the undo ops appended their (net-zero) compensations.  Snapshots at
    or before the mark stay maintainable; the discarded version range
    is remembered so {!deltas_since} refuses snapshots taken inside the
    rolled-back transaction (they saw uncommitted state the log no
    longer records).  If the log overflowed after the mark was taken
    the position is stale (possibly negative): the rewind then
    conservatively discards whatever is still logged and widens the
    refusal hole over it, so affected readers fall back. *)

val insert : t -> Tuple.t -> rid
val get : t -> rid -> Tuple.t option
val get_exn : t -> rid -> Tuple.t
val update : t -> rid -> Tuple.t -> unit
val delete : t -> rid -> unit

val iter : (rid -> Tuple.t -> unit) -> t -> unit
val fold : ('a -> rid -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> (rid * Tuple.t) list

val scan : t -> unit -> (rid * Tuple.t) option
(** Demand-driven cursor; skips tombstones and tolerates appends behind
    its position. *)

val scan_into :
  ?filter:(Tuple.t -> bool) ->
  t ->
  from:int ->
  Tuple.t array ->
  start:int ->
  max:int ->
  int * int
(** Batched scan: fill [out.(start .. start+max)] with live tuples
    beginning at slot [from], with no per-row allocation.  Returns
    [(next_slot, n_filled)]; skips tombstones like {!scan}.  [filter]
    (a push-down predicate such as a sideways join filter) sees every
    visited live tuple and drops failing rows before the output. *)

val iter_range : t -> lo:int -> hi:int -> (Tuple.t -> unit) -> int
(** Apply [f] to every live tuple in slots [lo, hi) (the morsel
    primitive for partitioned scans); returns live rows visited. *)
