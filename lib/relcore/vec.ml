(** Minimal growable array (OCaml 5.1 predates stdlib [Dynarray]). *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let to_array v = Array.sub v.data 0 v.len

let of_list ~dummy xs =
  let v = create ~dummy in
  List.iter (push v) xs;
  v

let truncate v n =
  if n < 0 then invalid_arg "Vec.truncate: negative length";
  if n < v.len then begin
    Array.fill v.data n (v.len - n) v.dummy;
    v.len <- n
  end

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0
