(** Fixed-capacity tuple batches — the unit of flow between plan
    operators ("table queues" evaluated a batch at a time).

    A batch is a dense prefix of rows plus an optional {e selection
    vector}: filters mark surviving rows in the vector instead of
    copying them, so a Scan→Filter→Filter chain touches each tuple
    array exactly once.  Consumers must go through {!get}/{!iter}/
    {!fold}, which respect the selection. *)

type t = {
  rows : Tuple.t array; (* capacity slots; only [0, len) are meaningful *)
  mutable len : int; (* dense prefix filled by the producer *)
  mutable sel : int array option; (* selection vector (ascending) over rows *)
  mutable sel_len : int; (* live entries of [sel]; unused when [sel = None] *)
}

(** Default rows per batch; override with [XNFDB_BATCH_SIZE].  256 keeps
    the row array within the runtime's minor-heap allocation limit
    (larger arrays are allocated directly in the major heap, which costs
    more than the dispatch the extra batch width would amortize).

    Read on every call so tests and benches can vary the knob
    in-process; executors that need a stable per-query value snapshot it
    into their context ([Exec.make_ctx ?batch_capacity]). *)
let default_capacity () =
  match Option.bind (Sys.getenv_opt "XNFDB_BATCH_SIZE") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 256

let empty_row : Tuple.t = [||]

let create ?capacity () =
  let capacity =
    match capacity with Some c -> c | None -> default_capacity ()
  in
  { rows = Array.make (max 1 capacity) empty_row; len = 0; sel = None; sel_len = 0 }

let capacity b = Array.length b.rows
let is_full b = b.len >= Array.length b.rows

(** Number of {e selected} rows. *)
let length b = match b.sel with None -> b.len | Some _ -> b.sel_len

let is_empty b = length b = 0

(** [i]-th selected row. *)
let get b i =
  match b.sel with None -> b.rows.(i) | Some s -> b.rows.(s.(i))

(** Append to the dense prefix (producer side; batch must have no
    selection vector yet). *)
let push b row =
  (match b.sel with
  | None -> ()
  | Some _ -> invalid_arg "Batch.push: batch already has a selection vector");
  if b.len >= Array.length b.rows then invalid_arg "Batch.push: batch is full";
  b.rows.(b.len) <- row;
  b.len <- b.len + 1

let iter f b =
  match b.sel with
  | None ->
    for i = 0 to b.len - 1 do
      f b.rows.(i)
    done
  | Some s ->
    for i = 0 to b.sel_len - 1 do
      f b.rows.(s.(i))
    done

let fold f acc b =
  let acc = ref acc in
  iter (fun row -> acc := f !acc row) b;
  !acc

(** Refine the selection in place, keeping rows where [keep] holds.
    Allocates the selection vector on first use; never copies tuples. *)
let refine b keep =
  match b.sel with
  | None ->
    let s = Array.make (max 1 b.len) 0 in
    let k = ref 0 in
    for i = 0 to b.len - 1 do
      if keep b.rows.(i) then begin
        s.(!k) <- i;
        incr k
      end
    done;
    b.sel <- Some s;
    b.sel_len <- !k
  | Some s ->
    let k = ref 0 in
    for i = 0 to b.sel_len - 1 do
      let idx = s.(i) in
      if keep b.rows.(idx) then begin
        s.(!k) <- idx;
        incr k
      end
    done;
    b.sel_len <- !k

(** Keep only the first [n] selected rows. *)
let truncate b n =
  match b.sel with
  | None -> if n < b.len then b.len <- max 0 n
  | Some _ -> if n < b.sel_len then b.sel_len <- max 0 n

(** Dense copy of [b] with [f] applied to every selected row (the
    projection primitive: output has no selection vector). *)
let map b f =
  let n = length b in
  let out = create ~capacity:(max 1 n) () in
  for i = 0 to n - 1 do
    out.rows.(i) <- f (get b i)
  done;
  out.len <- n;
  out

(** A hand-out copy safe to share with readers that may {!refine} or
    {!truncate} it: the (immutable once published) rows array is shared,
    but the record — whose [sel]/[sel_len]/[len] fields consumers mutate
    — is fresh.  Batches carrying a selection are densified so the
    shared copy starts selection-free. *)
let share b =
  match b.sel with
  | None -> { rows = b.rows; len = b.len; sel = None; sel_len = 0 }
  | Some _ -> map b Fun.id

let share_list bs = List.map share bs

let to_list b = List.rev (fold (fun acc row -> row :: acc) [] b)
let to_array b = Array.init (length b) (get b)

(** Chunk a row list into dense batches of at most [capacity] rows. *)
let of_list ?capacity rows =
  let capacity =
    match capacity with Some c -> c | None -> default_capacity ()
  in
  let rec go acc rows =
    match rows with
    | [] -> List.rev acc
    | _ ->
      let b = create ~capacity () in
      let rec fill rows =
        if is_full b then rows
        else
          match rows with
          | [] -> []
          | r :: tl ->
            push b r;
            fill tl
      in
      let rest = fill rows in
      go (b :: acc) rest
  in
  go [] rows

let of_array ?capacity rows = of_list ?capacity (Array.to_list rows)

(* -- helpers over batch lists (materialized table queues) --------------- *)

let list_length bs = List.fold_left (fun acc b -> acc + length b) 0 bs
let list_iter f bs = List.iter (iter f) bs

let list_to_rows bs =
  List.rev (List.fold_left (fun acc b -> fold (fun acc r -> r :: acc) acc b) [] bs)
