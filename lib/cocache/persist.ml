(** Disk persistence of the XNF cache (paper Sect. 5): "for long
    transactions, XNF allows the cache to be stored on disk and
    retrieved later, thereby protecting the cache from client machine's
    failure."

    The on-disk format is the heterogeneous-stream wire format plus the
    pending (not yet flushed) update operations. *)

open Relcore
module H = Xnf.Hetstream

(* version 2: floats carry their full 8-byte IEEE pattern (v1 truncated
   the sign bit through a 63-bit varint) *)
let magic = "XNFCACHE2\n"

(** Rebuild a heterogeneous stream from the cache's current state
    (including local inserts/updates; deleted nodes are dropped). *)
let stream_of_workspace (ws : Workspace.t) : H.t =
  let items = ref [] in
  let comp_no name = (Workspace.find_store ws name).Workspace.info.H.comp_no in
  List.iter
    (fun comp ->
      List.iter
        (fun (n : Conode.t) ->
          items :=
            H.Row { comp = comp_no comp; id = n.Conode.id; values = n.Conode.values }
            :: !items)
        (Workspace.nodes ws comp))
    (Workspace.node_component_names ws);
  (* connections, once each (via parents) *)
  List.iter
    (fun comp ->
      List.iter
        (fun (n : Conode.t) ->
          List.iter
            (fun (c : Conode.conn) ->
              items :=
                H.Conn
                  {
                    rel = comp_no c.Conode.rel;
                    id = c.Conode.conn_id;
                    parent = c.Conode.parent.Conode.id;
                    children = Array.map (fun ch -> ch.Conode.id) c.Conode.children;
                    attrs = c.Conode.attrs;
                  }
                :: !items)
            n.Conode.out_conns)
        (Workspace.nodes ws comp))
    (Workspace.node_component_names ws);
  { H.header = ws.Workspace.header; items = List.rev !items }

let write_op buf (op : Workspace.pending_op) =
  let wtuple t =
    H.write_int buf (Array.length t);
    Array.iter (H.write_value buf) t
  in
  match op with
  | Workspace.P_insert { comp; values } ->
    Buffer.add_char buf 'i';
    H.write_string buf comp;
    wtuple values
  | Workspace.P_update { comp; old_values; new_values } ->
    Buffer.add_char buf 'u';
    H.write_string buf comp;
    wtuple old_values;
    wtuple new_values
  | Workspace.P_delete { comp; values } ->
    Buffer.add_char buf 'd';
    H.write_string buf comp;
    wtuple values
  | Workspace.P_connect { rel; parent; child } ->
    Buffer.add_char buf 'c';
    H.write_string buf rel;
    wtuple parent;
    wtuple child
  | Workspace.P_disconnect { rel; parent; child } ->
    Buffer.add_char buf 'x';
    H.write_string buf rel;
    wtuple parent;
    wtuple child

let read_op (r : H.reader) : Workspace.pending_op =
  let rtuple () =
    let n = H.read_int r in
    Array.init n (fun _ -> H.read_value r)
  in
  match H.read_char r with
  | 'i' ->
    let comp = H.read_string r in
    Workspace.P_insert { comp; values = rtuple () }
  | 'u' ->
    let comp = H.read_string r in
    let old_values = rtuple () in
    let new_values = rtuple () in
    Workspace.P_update { comp; old_values; new_values }
  | 'd' ->
    let comp = H.read_string r in
    Workspace.P_delete { comp; values = rtuple () }
  | 'c' ->
    let rel = H.read_string r in
    let parent = rtuple () in
    let child = rtuple () in
    Workspace.P_connect { rel; parent; child }
  | 'x' ->
    let rel = H.read_string r in
    let parent = rtuple () in
    let child = rtuple () in
    Workspace.P_disconnect { rel; parent; child }
  | c -> Errors.execution_error "corrupt cache file: op tag %C" c

(** Save the cache (state + pending operations) to a file. *)
let save (ws : Workspace.t) (path : string) : unit =
  let stream = stream_of_workspace ws in
  let body = H.serialize stream in
  let buf = Buffer.create (String.length body + 1024) in
  Buffer.add_string buf magic;
  H.write_int buf (String.length body);
  Buffer.add_string buf body;
  let ops = Workspace.pending_ops ws in
  H.write_int buf (List.length ops);
  List.iter (write_op buf) ops;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf))

(** Load a cache from a file. *)
let load (path : string) : Workspace.t =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if
    String.length data < String.length magic
    || String.sub data 0 (String.length magic) <> magic
  then Errors.execution_error "not an XNF cache file: %s" path;
  let r = { H.data; pos = String.length magic } in
  let body_len = H.read_int r in
  let body = String.sub data r.H.pos body_len in
  r.H.pos <- r.H.pos + body_len;
  let ws = Workspace.of_stream (H.deserialize body) in
  let n_ops = H.read_int r in
  let ops = List.init n_ops (fun _ -> read_op r) in
  ws.Workspace.pending <- List.rev ops;
  ws
