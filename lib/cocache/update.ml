(** Updatability analysis and write-back (paper Sect. 2).

    "Update of the nodes is essentially identical to update of views in
    the relational DBMSs [...].  Relationships often are defined based on
    simple foreign keys or connect tables.  Connect and disconnect
    operations on such relationships translate to updating the foreign
    keys or inserting/deleting the associated tuples in the connect
    tables."

    A node component is updatable iff its table expression is a
    select/project over one base table; a relationship is updatable iff
    it is binary and its predicate is a conjunction of column equalities
    through either a foreign key or a single USING connect table. *)

open Relcore
module Ast = Sqlkit.Ast
module Db = Engine.Database
module Xnf_ast = Xnf.Xnf_ast
module Sql_derivation = Xnf.Sql_derivation

(* The analysis itself lives in {!Xnf.Updatability} so the SQL surface
   (DML on view.component) can share it; re-exported here for cache
   write-back. *)

type node_target = Xnf.Updatability.node_target = {
  nt_base : string;
  nt_col_map : (string * string) list;
  nt_pred : Ast.pred;
}

type rel_target = Xnf.Updatability.rel_target =
  | Foreign_key of {
      fk_child : string;
      fk_pairs : (string * string) list;
    }
  | Connect_table of {
      ct_table : string;
      ct_parent_pairs : (string * string) list;
      ct_child_pairs : (string * string) list;
    }

let analyze_node (db : Db.t) (ast : Xnf_ast.query) (comp : string) :
    node_target option =
  Xnf.Updatability.analyze_node (Db.catalog db) ast comp

let analyze_rel = Xnf.Updatability.analyze_rel

(* -- write-back ----------------------------------------------------------- *)

let value_of ws comp (row : Tuple.t) col : Value.t =
  let s = Workspace.schema ws comp in
  match Schema.find_opt s col with
  | Some i -> row.(i)
  | None ->
    Errors.semantic_error
      "column %S of %S was projected away by TAKE; operation not translatable"
      col comp

(** Key predicate identifying [row] in the base table: prefer the base
    table's primary key columns, fall back to all mapped columns. *)
let key_where (db : Db.t) ws comp (nt : node_target) (row : Tuple.t) : Ast.pred =
  let base = Catalog.find_table (Db.catalog db) nt.nt_base in
  let inv_map = List.map (fun (c, b) -> (b, c)) nt.nt_col_map in
  (* component columns that map onto a declared unique key *)
  let pk_cols =
    match
      List.find_opt (fun i -> i.Index.unique) base.Base_table.indexes
    with
    | Some idx ->
      let cols =
        Array.to_list idx.Index.key_columns
        |> List.map (fun i ->
               (Schema.column_at (Base_table.schema base) i).Schema.name)
      in
      if List.for_all (fun c -> List.mem_assoc c inv_map) cols then
        Some (List.map (fun c -> (List.assoc c inv_map, c)) cols)
      else None
    | None -> None
  in
  let cols =
    match pk_cols with
    | Some cols -> cols
    | None -> nt.nt_col_map
  in
  Ast.conj
    (List.map
       (fun (comp_col, base_col) ->
         let v = value_of ws comp row comp_col in
         if Value.is_null v then Ast.Is_null (Ast.col base_col)
         else Ast.Cmp (Ast.Eq, Ast.col base_col, Ast.Lit v))
       cols)

(** Translate one pending operation to SQL statements. *)
let translate (db : Db.t) (ast : Xnf_ast.query) ws (op : Workspace.pending_op) :
    Ast.stmt list =
  let require_node comp =
    match analyze_node db ast comp with
    | Some nt -> nt
    | None ->
      Errors.semantic_error
        "component %S is not updatable (not a select/project of one base \
         table)"
        comp
  in
  match op with
  | Workspace.P_insert { comp; values } ->
    let nt = require_node comp in
    let cols = List.map snd nt.nt_col_map in
    let s = Workspace.schema ws comp in
    let exprs =
      List.map
        (fun (comp_col, _) -> Ast.Lit values.(Schema.find s comp_col))
        nt.nt_col_map
    in
    [ Ast.Insert { table_name = nt.nt_base; columns = Some cols; rows = [ exprs ] } ]
  | Workspace.P_update { comp; old_values; new_values } ->
    let nt = require_node comp in
    let s = Workspace.schema ws comp in
    let sets =
      List.filter_map
        (fun (comp_col, base_col) ->
          let i = Schema.find s comp_col in
          if Value.equal old_values.(i) new_values.(i) then None
          else Some (base_col, Ast.Lit new_values.(i)))
        nt.nt_col_map
    in
    if sets = [] then []
    else
      [
        Ast.Update
          {
            table_name = nt.nt_base;
            sets;
            where = key_where db ws comp nt old_values;
          };
      ]
  | Workspace.P_delete { comp; values } ->
    let nt = require_node comp in
    [ Ast.Delete { table_name = nt.nt_base; where = key_where db ws comp nt values } ]
  | Workspace.P_connect { rel; parent; child } -> begin
    let meta = Workspace.rel_meta ws rel in
    match analyze_rel ast rel with
    | Some (Foreign_key { fk_child; fk_pairs }) ->
      let nt = require_node fk_child in
      let sets =
        List.map
          (fun (child_col, parent_col) ->
            let v = value_of ws meta.Xnf.Hetstream.rm_parent parent parent_col in
            (List.assoc child_col nt.nt_col_map, Ast.Lit v))
          fk_pairs
      in
      [
        Ast.Update
          {
            table_name = nt.nt_base;
            sets;
            where = key_where db ws fk_child nt child;
          };
      ]
    | Some (Connect_table { ct_table; ct_parent_pairs; ct_child_pairs }) ->
      let child_comp = List.hd meta.Xnf.Hetstream.rm_children in
      let cols = List.map fst (ct_parent_pairs @ ct_child_pairs) in
      let vals =
        List.map
          (fun (_, pc) ->
            Ast.Lit (value_of ws meta.Xnf.Hetstream.rm_parent parent pc))
          ct_parent_pairs
        @ List.map
            (fun (_, cc) -> Ast.Lit (value_of ws child_comp child cc))
            ct_child_pairs
      in
      [ Ast.Insert { table_name = ct_table; columns = Some cols; rows = [ vals ] } ]
    | None ->
      Errors.semantic_error "relationship %S is not updatable" rel
  end
  | Workspace.P_disconnect { rel; parent; child } -> begin
    let meta = Workspace.rel_meta ws rel in
    match analyze_rel ast rel with
    | Some (Foreign_key { fk_child; fk_pairs }) ->
      let nt = require_node fk_child in
      let sets =
        List.map
          (fun (child_col, _) ->
            (List.assoc child_col nt.nt_col_map, Ast.Lit Value.Null))
          fk_pairs
      in
      [
        Ast.Update
          {
            table_name = nt.nt_base;
            sets;
            where = key_where db ws fk_child nt child;
          };
      ]
    | Some (Connect_table { ct_table; ct_parent_pairs; ct_child_pairs }) ->
      let child_comp = List.hd meta.Xnf.Hetstream.rm_children in
      let where =
        Ast.conj
          (List.map
             (fun (uc, pc) ->
               Ast.Cmp
                 ( Ast.Eq,
                   Ast.col uc,
                   Ast.Lit (value_of ws meta.Xnf.Hetstream.rm_parent parent pc) ))
             ct_parent_pairs
          @ List.map
              (fun (uc, cc) ->
                Ast.Cmp
                  (Ast.Eq, Ast.col uc, Ast.Lit (value_of ws child_comp child cc)))
              ct_child_pairs)
      in
      [ Ast.Delete { table_name = ct_table; where } ]
    | None ->
      Errors.semantic_error "relationship %S is not updatable" rel
  end

(* -- statement coalescing ------------------------------------------------- *)

(* A predicate the coalescer may OR-merge: a conjunction of
   column-vs-literal comparisons and NULL tests (exactly the shape
   [key_where] emits).  Anything else — subqueries, arithmetic over
   other columns — is left alone. *)
let rec simple_pred = function
  | Ast.Ptrue -> true
  | Ast.Cmp (_, a, b) -> simple_expr a && simple_expr b
  | Ast.And (a, b) -> simple_pred a && simple_pred b
  | Ast.Is_null e | Ast.Is_not_null e -> simple_expr e
  | _ -> false

and simple_expr = function Ast.Col _ | Ast.Lit _ -> true | _ -> false

let pred_cols p =
  let cols = ref [] in
  Ast.iter_pred_cols (fun _tbl c -> cols := c :: !cols) p;
  !cols

(* OR of the run's key predicates, in statement order. *)
let disj = function
  | [] -> Ast.Ptrue
  | w :: ws -> List.fold_left (fun p w -> Ast.Or (p, w)) w ws

(* Coalesce runs of adjacent statements bound for the same table.  Op
   order is preserved: only adjacent statements merge, so an
   interleaved statement of another shape still sees exactly the
   effects of the ops before it.

   - Single-row INSERTs sharing one column list become one multi-row
     INSERT.
   - DELETEs with {!simple_pred} key predicates merge by OR-ing them:
     deleting [w1] then [w2] removes exactly the rows matching
     [w1 ∨ w2], because a simple predicate's match set cannot depend
     on other rows' presence.
   - UPDATEs with structurally equal all-constant SET lists merge the
     same way, additionally guarded on the SET columns staying out of
     every WHERE in the run: then no update of the run can change
     which rows a later WHERE matches, and re-applying the identical
     constant SET to a doubly-matched row is idempotent. *)
let coalesce_stmts (stmts : Ast.stmt list) : Ast.stmt list =
  let flush_run run acc =
    match run with
    | None -> acc
    | Some (`Ins (table_name, columns, rows)) ->
      Ast.Insert { table_name; columns; rows = List.rev rows } :: acc
    | Some (`Del (table_name, wheres)) ->
      Ast.Delete { table_name; where = disj (List.rev wheres) } :: acc
    | Some (`Upd (table_name, sets, wheres)) ->
      Ast.Update { table_name; sets; where = disj (List.rev wheres) } :: acc
  in
  let const_sets sets =
    List.for_all (fun (_, e) -> match e with Ast.Lit _ -> true | _ -> false) sets
  in
  let guarded sets where =
    simple_pred where
    && const_sets sets
    && List.for_all
         (fun c -> not (List.mem_assoc c sets))
         (pred_cols where)
  in
  let acc, run =
    List.fold_left
      (fun (acc, run) stmt ->
        match stmt with
        | Ast.Insert { table_name; columns; rows } -> begin
          match run with
          | Some (`Ins (t, c, prev)) when String.equal t table_name && c = columns
            ->
            (acc, Some (`Ins (t, c, List.rev_append rows prev)))
          | _ ->
            (flush_run run acc, Some (`Ins (table_name, columns, List.rev rows)))
        end
        | Ast.Delete { table_name; where } when simple_pred where -> begin
          match run with
          | Some (`Del (t, ws)) when String.equal t table_name ->
            (acc, Some (`Del (t, where :: ws)))
          | _ -> (flush_run run acc, Some (`Del (table_name, [ where ])))
        end
        | Ast.Update { table_name; sets; where } when guarded sets where -> begin
          match run with
          | Some (`Upd (t, s, ws)) when String.equal t table_name && s = sets ->
            (acc, Some (`Upd (t, s, where :: ws)))
          | _ -> (flush_run run acc, Some (`Upd (table_name, sets, [ where ])))
        end
        | other -> (other :: flush_run run acc, None))
      ([], None) stmts
  in
  List.rev (flush_run run acc)

(** Flush all pending cache operations back to the database.  Returns
    the SQL statements executed (in order); adjacent same-table ops
    coalesce — runs of inserts go as single multi-row statements, runs
    of key-predicate deletes (and identical-SET updates) go as single
    statements with OR-merged predicates, so the engine's batch DML
    path evaluates one predicate pass per run instead of one per row. *)
let flush (db : Db.t) (ast : Xnf_ast.query) (ws : Workspace.t) : string list =
  let stmts =
    coalesce_stmts
      (List.concat_map (translate db ast ws) (Workspace.pending_ops ws))
  in
  let sqls =
    List.map
      (fun stmt ->
        ignore (Db.exec_stmt db stmt);
        Sqlkit.Pretty.stmt_to_string stmt)
      stmts
  in
  Workspace.clear_pending ws;
  sqls

(** Like {!flush} but atomic: all pending operations commit together or,
    if any statement fails (untranslatable operation, constraint
    violation), none is applied and the pending list is preserved. *)
let flush_atomic (db : Db.t) (ast : Xnf_ast.query) (ws : Workspace.t) :
    string list =
  Db.atomically db (fun () -> flush db ast ws)
