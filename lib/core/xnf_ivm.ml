(** Incremental maintenance of cached CO-view streams.

    The stream cache in {!Xnf_compile} is version-keyed: any DML against
    a table a cached extraction read moves the key and the entry is
    never found again.  This module turns that invalidate-on-write into
    maintain-on-read: a registry keyed by the {e structural} part of the
    stream key remembers, per cached extraction, a {!Executor.Delta}
    maintainer tree (plan operators with their join/posting mirrors),
    the per-component [(prov, row)] contents, and a mirror of the
    assembly state (tuple-id maps and the emitted items).  When a read
    misses only because versions moved, the per-table delta logs are
    pushed through the maintainer, the component contents are spliced,
    the assembled [Hetstream] is patched (in place for pure value
    updates; re-assembled from the maintained components when the item
    structure shifts), and the result is stored under the new versioned
    key — byte-identical to a cold recomputation.

    Trust is earned, not assumed: the maintainer state is only built on
    a {e refill} (a miss for a query seen before), and at that moment
    the maintainer's idea of every component is verified row-by-row
    against the executor's actual output; any mismatch falls back to
    the executor and, after two strikes, disables instrumentation for
    that query.  The [XNFDB_IVM] knob (default on) restores today's
    invalidate + recompute behavior exactly; delta-log overflow and the
    [XNFDB_IVM_THRESHOLD] cost gate (delta rows / cached rows) fall
    back per-window. *)

open Relcore
module Plan = Optimizer.Plan
module Delta = Executor.Delta
module Exec = Executor.Exec

let truthy = function "0" | "false" | "off" | "no" -> false | _ -> true

let enabled () =
  match Sys.getenv_opt "XNFDB_IVM" with
  | Some s -> truthy (String.lowercase_ascii (String.trim s))
  | None -> true

(* Maintenance cost gate: fall back to recompute when the window's delta
   rows exceed this fraction of the cached rows. *)
let threshold () =
  match Sys.getenv_opt "XNFDB_IVM_THRESHOLD" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some f when f > 0.0 -> f
    | _ -> 0.2)
  | None -> 0.2

type stats = {
  mutable fills : int; (* instrumented refills (state built + verified) *)
  mutable maintained : int; (* reads served by delta maintenance *)
  mutable patched : int; (* ... of which patched items in place *)
  mutable reassembled : int; (* ... of which re-assembled from components *)
  mutable fallbacks : int; (* windows that fell back to recompute *)
  mutable mismatches : int; (* verification failures at refill *)
}

let stats = {
  fills = 0;
  maintained = 0;
  patched = 0;
  reassembled = 0;
  fallbacks = 0;
  mismatches = 0;
}

let reset_stats () =
  stats.fills <- 0;
  stats.maintained <- 0;
  stats.patched <- 0;
  stats.reassembled <- 0;
  stats.fallbacks <- 0;
  stats.mismatches <- 0

(* -- registry ----------------------------------------------------------- *)

(* One tuple-id map cell per distinct component row: the id it was
   assigned and how many stream rows carry that exact value. *)
type cell = { mutable cid : int; mutable ccnt : int }

type node_state = {
  ns_name : string;
  ns_comp : Hetstream.comp_info;
  ns_project : Tuple.t -> Tuple.t;
  ns_map : cell Tuple.Tbl.t; (* full (pre-projection) row -> cell *)
  mutable ns_first_id : int;
  mutable ns_ncells : int; (* distinct rows = ids assigned to this comp *)
  mutable ns_items : Hetstream.item array; (* [||] unless in TAKE *)
}

type rel_state = {
  rs_name : string;
  rs_comp : Hetstream.comp_info;
  rs_ro : Xnf_rewrite.rel_output;
  (* one slot per component row, [None] for deduplicated duplicates *)
  mutable rs_items : Hetstream.item option array;
  rs_keys : int ref Tuple.Tbl.t; (* [parent; children...] id multiset *)
  mutable rs_start_id : int; (* id cursor on entry to this comp *)
  mutable rs_nemit : int; (* ids this comp consumed *)
}

type state = {
  roots : (string * Delta.node) list; (* per needed component, in order *)
  mutable comps : (string * (Delta.prov * Tuple.t) array) list;
  nstates : node_state list; (* node_outputs order *)
  rstates : rel_state list; (* in-TAKE rel_outputs order *)
  mutable stream : Hetstream.t;
  (* [tails.(k)] is the emitted item list from the k-th streamed
     component onward ([tails.(ncomp)] = []); a window that only touches
     early components re-conses their items and shares the rest. *)
  mutable tails : Hetstream.item list array;
  mutable approx : int; (* cached [Hetstream.approx_bytes] of [stream] *)
}

type entry = {
  mutable seen : bool; (* a first fill happened; instrument the refill *)
  mutable failures : int; (* verification strikes; dead at 2 *)
  mutable st : state option;
  mutable versions : (Base_table.t * int) list; (* as of last sync *)
}

let registry : (string, entry) Hashtbl.t = Hashtbl.create 16
let mu = Mutex.create ()
let gen = ref 0

let reset () =
  Mutex.protect mu (fun () -> Hashtbl.reset registry)

let find_entry skey =
  match Hashtbl.find_opt registry skey with
  | Some e -> e
  | None ->
    if Hashtbl.length registry >= 64 then Hashtbl.reset registry;
    let e = { seen = false; failures = 0; st = None; versions = [] } in
    Hashtbl.add registry skey e;
    e

exception Fallback of string

(* -- tracked assembly --------------------------------------------------- *)

(* Emitted components in stream order — the TAKE-listed node components,
   then the relationship components; each fold conses that component's
   current items onto an accumulator (the next component's tail). *)
let slot_folds (st : state) :
    (Hetstream.item list -> Hetstream.item list) array =
  let node_slots =
    List.filter_map
      (fun ns ->
        if ns.ns_comp.Hetstream.in_take then
          Some
            (fun acc ->
              Array.fold_right (fun it acc -> it :: acc) ns.ns_items acc)
        else None)
      st.nstates
  in
  let rel_slots =
    List.map
      (fun rs acc ->
        Array.fold_right
          (fun o acc -> match o with Some it -> it :: acc | None -> acc)
          rs.rs_items acc)
      st.rstates
  in
  Array.of_list (node_slots @ rel_slots)

(* Rebuild the stream's item list from the per-component item arrays,
   re-consing only components up to the last changed one and sharing the
   previous stream's tail beyond it. *)
let rebuild_items (st : state) (last_changed : int) : Hetstream.item list =
  let folds = slot_folds st in
  let ncomp = Array.length folds in
  if Array.length st.tails <> ncomp + 1 then
    st.tails <- Array.make (ncomp + 1) [];
  for k = last_changed downto 0 do
    st.tails.(k) <- folds.(k) st.tails.(k + 1)
  done;
  st.tails.(0)

(* Exactly [Xnf_compile.assemble], but driven from the maintained
   per-component [(prov, row)] arrays (prov-sorted = batch order) and
   recording the id maps and emitted items so later windows can patch
   them instead of re-running this. *)
let assemble_tracked (st : state) (header : Hetstream.header) : Hetstream.t =
  let id_counter = ref 0 in
  let fresh () =
    incr id_counter;
    !id_counter
  in
  List.iter
    (fun ns ->
      Tuple.Tbl.reset ns.ns_map;
      ns.ns_first_id <- !id_counter + 1;
      let buf = ref [] in
      Array.iter
        (fun ((_, row) : Delta.prov * Tuple.t) ->
          match Tuple.Tbl.find_opt ns.ns_map row with
          | Some cell -> cell.ccnt <- cell.ccnt + 1
          | None ->
            let id = fresh () in
            Tuple.Tbl.add ns.ns_map row { cid = id; ccnt = 1 };
            if ns.ns_comp.Hetstream.in_take then begin
              let item =
                Hetstream.Row
                  {
                    comp = ns.ns_comp.Hetstream.comp_no;
                    id;
                    values = ns.ns_project row;
                  }
              in
              buf := item :: !buf
            end)
        (List.assoc ns.ns_name st.comps);
      ns.ns_ncells <- Tuple.Tbl.length ns.ns_map;
      ns.ns_items <- Array.of_list (List.rev !buf))
    st.nstates;
  let id_of comp part =
    let ns = List.find (fun ns -> String.equal ns.ns_name comp) st.nstates in
    match Tuple.Tbl.find_opt ns.ns_map part with
    | Some cell -> cell.cid
    | None ->
      Errors.execution_error
        "connection references a %s tuple missing from its component" comp
  in
  List.iter
    (fun rs ->
      let ro = rs.rs_ro in
      let parent_span = ro.Xnf_rewrite.ro_parent_span in
      let child_spans = ro.Xnf_rewrite.ro_child_spans in
      let attr_off, attr_w = ro.Xnf_rewrite.ro_attr_span in
      Tuple.Tbl.reset rs.rs_keys;
      rs.rs_start_id <- !id_counter;
      rs.rs_items <-
        Array.map
          (fun ((_, row) : Delta.prov * Tuple.t) ->
            let sub (off, w) = Array.sub row off w in
            let parent = id_of ro.Xnf_rewrite.ro_parent (sub parent_span) in
            let children =
              Array.of_list
                (List.map (fun (ch, span) -> id_of ch (sub span)) child_spans)
            in
            let key =
              Array.of_list
                (Value.Int parent
                :: Array.to_list (Array.map (fun i -> Value.Int i) children))
            in
            match Tuple.Tbl.find_opt rs.rs_keys key with
            | Some c ->
              incr c;
              None
            | None ->
              Tuple.Tbl.add rs.rs_keys key (ref 1);
              Some
                (Hetstream.Conn
                   {
                     rel = rs.rs_comp.Hetstream.comp_no;
                     id = fresh ();
                     parent;
                     children;
                     attrs = Array.sub row attr_off attr_w;
                   }))
          (List.assoc rs.rs_name st.comps);
      rs.rs_nemit <- !id_counter - rs.rs_start_id)
    st.rstates;
  let ncomp =
    List.length
      (List.filter (fun ns -> ns.ns_comp.Hetstream.in_take) st.nstates)
    + List.length st.rstates
  in
  st.tails <- Array.make (ncomp + 1) [];
  let items = rebuild_items st (ncomp - 1) in
  let stream = { Hetstream.header; items } in
  st.approx <- Hetstream.approx_bytes stream;
  stream

(* -- instrumented refill ------------------------------------------------ *)

let needed_names (rewritten : Xnf_rewrite.result)
    (header : Hetstream.header) : string list =
  List.map (fun (n : Xnf_rewrite.node_output) -> n.Xnf_rewrite.no_name)
    rewritten.Xnf_rewrite.node_outputs
  @ List.filter_map
      (fun (ro : Xnf_rewrite.rel_output) ->
        let info = Hetstream.find_comp header ro.Xnf_rewrite.ro_name in
        if info.Hetstream.in_take then Some ro.Xnf_rewrite.ro_name else None)
      rewritten.Xnf_rewrite.rel_outputs

exception Mismatch of string

(* Build maintainer state for the refill: run the executor (authoritative),
   fill the maintainer tree from current table contents, and verify the
   two agree row-for-row on every needed component before trusting the
   maintainer with future windows. *)
let instrument (entry : entry) ~(header : Hetstream.header)
    ~(rewritten : Xnf_rewrite.result) ~(plans : (string * Plan.compiled) list)
    : Hetstream.t =
  let needed = needed_names rewritten header in
  let tables =
    let seen = Hashtbl.create 8 in
    List.concat_map
      (fun name -> Plan.tables (List.assoc name plans).Plan.plan)
      needed
    |> List.filter (fun t ->
           let tid = Base_table.tid t in
           if Hashtbl.mem seen tid then false
           else begin
             Hashtbl.add seen tid ();
             true
           end)
  in
  (* Capture the version vector under the publication lock: a group
     commit publishing between two per-table reads would otherwise leave
     a torn baseline and the next [maintain] would replay half a txn. *)
  let versions =
    Mutex.protect Snapshot.publish_mu (fun () ->
        List.map (fun t -> (t, Base_table.version t)) tables)
  in
  let ctx = Exec.make_ctx ~result_cache:true () in
  let dctx = Delta.make_ctx () in
  let roots =
    List.map
      (fun name -> (name, Delta.compile dctx (List.assoc name plans).Plan.plan))
      needed
  in
  let comps =
    List.map
      (fun (name, root) ->
        let exec_rows =
          Batch.list_to_rows (Exec.run_batches ~ctx (List.assoc name plans))
        in
        let filled = Delta.fill_sorted root in
        if Array.length filled <> List.length exec_rows then
          raise (Mismatch name);
        List.iteri
          (fun i row ->
            if not (Tuple.equal row (snd filled.(i))) then raise (Mismatch name))
          exec_rows;
        (name, filled))
      roots
  in
  List.iter (fun (_, root) -> Delta.clear_fill_memo root) roots;
  let nstates =
    List.map
      (fun (n : Xnf_rewrite.node_output) ->
        let name = n.Xnf_rewrite.no_name in
        let info = Hetstream.find_comp header name in
        let plan = List.assoc name plans in
        let project =
          match n.Xnf_rewrite.no_take_cols with
          | None -> Fun.id
          | Some cols ->
            let idxs =
              Array.of_list (List.map (Schema.find plan.Plan.out_schema) cols)
            in
            fun row -> Tuple.project row idxs
        in
        {
          ns_name = name;
          ns_comp = info;
          ns_project = project;
          ns_map = Tuple.Tbl.create 256;
          ns_first_id = 0;
          ns_ncells = 0;
          ns_items = [||];
        })
      rewritten.Xnf_rewrite.node_outputs
  in
  let rstates =
    List.filter_map
      (fun (ro : Xnf_rewrite.rel_output) ->
        let info = Hetstream.find_comp header ro.Xnf_rewrite.ro_name in
        if info.Hetstream.in_take then
          Some
            {
              rs_name = ro.Xnf_rewrite.ro_name;
              rs_comp = info;
              rs_ro = ro;
              rs_items = [||];
              rs_keys = Tuple.Tbl.create 256;
              rs_start_id = 0;
              rs_nemit = 0;
            }
        else None)
      rewritten.Xnf_rewrite.rel_outputs
  in
  let st =
    {
      roots;
      comps;
      nstates;
      rstates;
      stream = { Hetstream.header; items = [] };
      tails = [||];
      approx = 0;
    }
  in
  let stream = assemble_tracked st header in
  st.stream <- stream;
  entry.st <- Some st;
  entry.versions <- versions;
  stats.fills <- stats.fills + 1;
  stream

(* -- maintenance window ------------------------------------------------- *)

(* Incremental patch: apply a window's per-component changes directly to
   the mirrored assembly state.  Value-level replacements transfer their
   tuple id in place; structural changes are spliced — node rows may
   appear or disappear at the id tail (OO1-style inserts and deletes of
   the newest rows), relationship rows anywhere — and every relationship
   item downstream of a shift is renumbered by one O(rows) pointer walk
   that reuses the untouched item records.  Anything the splice rules
   cannot prove id-stable raises [Slow] and the caller re-assembles from
   the maintained component arrays instead. *)

exception Slow

(* Per-component window results threaded from [maintain] into the patch:
   (pre-window array, post-window array, prov-ordered changes). *)
type comp_window =
  (Delta.prov * Tuple.t) array
  * (Delta.prov * Tuple.t) array
  * (Delta.prov * Delta.change) list

let patch_items (st : state) (header : Hetstream.header)
    (merged : (string * comp_window) list) : Hetstream.t =
  let n_nslots =
    List.length
      (List.filter (fun ns -> ns.ns_comp.Hetstream.in_take) st.nstates)
  in
  let ncomp = n_nslots + List.length st.rstates in
  let changed = Array.make (max 1 ncomp) false in
  (* -- node components -------------------------------------------------- *)
  (* A structural node change shifts every id assigned after it; allow it
     only when nothing but relationship ids (renumbered below) follow. *)
  let struct_seen = ref false in
  let nslot = ref (-1) in
  List.iter
    (fun ns ->
      if ns.ns_comp.Hetstream.in_take then incr nslot;
      let dirty = ref false in
      if !struct_seen && ns.ns_ncells > 0 then raise Slow;
      let _, new_arr, ops = List.assoc ns.ns_name merged in
      let reps = ref [] and rems = ref [] and adds = ref [] in
      List.iter
        (fun (p, ch) ->
          match ch with
          | Delta.C_rep (o, nw) -> reps := (o, nw) :: !reps
          | Delta.C_rem o -> rems := o :: !rems
          | Delta.C_add r -> adds := (p, r) :: !adds)
        ops;
      let reps = List.rev !reps
      and rems = List.rev !rems
      and adds = List.rev !adds in
      (* replacements: clean one-to-one id transfers only *)
      List.iter
        (fun (o, nw) ->
          (match Tuple.Tbl.find_opt ns.ns_map o with
          | Some cell when cell.ccnt = 1 -> ()
          | _ -> raise Slow);
          if Tuple.Tbl.mem ns.ns_map nw then raise Slow;
          if List.exists (fun (o', _) -> Tuple.equal o' nw) reps then
            raise Slow)
        reps;
      List.iter
        (fun (o, nw) ->
          let cell = Tuple.Tbl.find ns.ns_map o in
          Tuple.Tbl.remove ns.ns_map o;
          Tuple.Tbl.add ns.ns_map nw cell;
          if ns.ns_comp.Hetstream.in_take then begin
            ns.ns_items.(cell.cid - ns.ns_first_id) <-
              Hetstream.Row
                {
                  comp = ns.ns_comp.Hetstream.comp_no;
                  id = cell.cid;
                  values = ns.ns_project nw;
                };
            dirty := true
          end)
        reps;
      (* removals: the freed ids must be exactly this component's tail
         (first-appearance order is unknowable for duplicated rows) *)
      if rems <> [] then begin
        let cids =
          List.map
            (fun o ->
              match Tuple.Tbl.find_opt ns.ns_map o with
              | Some cell when cell.ccnt = 1 -> cell.cid
              | _ -> raise Slow)
            rems
        in
        let k = List.length cids in
        let hi = ns.ns_first_id + ns.ns_ncells - 1 in
        let sorted = List.sort Int.compare cids in
        List.iteri
          (fun t cid -> if cid <> hi - k + 1 + t then raise Slow)
          sorted;
        List.iter (fun o -> Tuple.Tbl.remove ns.ns_map o) rems;
        ns.ns_ncells <- ns.ns_ncells - k;
        if ns.ns_comp.Hetstream.in_take then begin
          ns.ns_items <- Array.sub ns.ns_items 0 (Array.length ns.ns_items - k);
          dirty := true
        end;
        struct_seen := true
      end;
      (* additions: fresh values appended strictly after every survivor *)
      if adds <> [] then begin
        let m = List.length adds in
        let nn = Array.length new_arr in
        if nn < m then raise Slow;
        List.iteri
          (fun t (p, _) ->
            if Delta.compare_prov (fst new_arr.(nn - m + t)) p <> 0 then
              raise Slow)
          adds;
        let extra =
          List.map
            (fun (_, r) ->
              if Tuple.Tbl.mem ns.ns_map r then raise Slow;
              ns.ns_ncells <- ns.ns_ncells + 1;
              let id = ns.ns_first_id + ns.ns_ncells - 1 in
              Tuple.Tbl.add ns.ns_map r { cid = id; ccnt = 1 };
              (id, r))
            adds
        in
        if ns.ns_comp.Hetstream.in_take then begin
          let rows =
            List.map
              (fun (id, r) ->
                Hetstream.Row
                  {
                    comp = ns.ns_comp.Hetstream.comp_no;
                    id;
                    values = ns.ns_project r;
                  })
              extra
          in
          ns.ns_items <- Array.append ns.ns_items (Array.of_list rows);
          dirty := true
        end;
        struct_seen := true
      end;
      if !dirty then changed.(!nslot) <- true)
    st.nstates;
  (* -- relationship components ------------------------------------------ *)
  let next_id =
    ref (List.fold_left (fun acc ns -> acc + ns.ns_ncells) 0 st.nstates)
  in
  let fresh () =
    incr next_id;
    !next_id
  in
  let id_of comp part =
    let ns = List.find (fun ns -> String.equal ns.ns_name comp) st.nstates in
    match Tuple.Tbl.find_opt ns.ns_map part with
    | Some cell -> cell.cid
    | None -> raise Slow
  in
  List.iteri
    (fun ri rs ->
      let dirty = ref false in
      let old_arr, new_arr, ops = List.assoc rs.rs_name merged in
      let start = !next_id in
      let ro = rs.rs_ro in
      let attr_off, attr_w = ro.Xnf_rewrite.ro_attr_span in
      let key_of row =
        let sub (off, w) = Array.sub row off w in
        let parent =
          id_of ro.Xnf_rewrite.ro_parent (sub ro.Xnf_rewrite.ro_parent_span)
        in
        let children =
          List.map
            (fun (ch, span) -> id_of ch (sub span))
            ro.Xnf_rewrite.ro_child_spans
        in
        (parent, children)
      in
      let key_tuple parent children =
        Array.of_list
          (Value.Int parent :: List.map (fun i -> Value.Int i) children)
      in
      let all_reps =
        List.for_all
          (fun (_, ch) -> match ch with Delta.C_rep _ -> true | _ -> false)
          ops
      in
      if ops = [] && start = rs.rs_start_id then
        (* untouched and unshifted: items and ids stand as they are *)
        next_id := start + rs.rs_nemit
      else if all_reps && start = rs.rs_start_id then begin
        (* in-place value replacements: ids, provs and positions are all
           stable — fix up just the touched slots (copy-on-write) *)
        let n = Array.length new_arr in
        let bsearch p =
          let lo = ref 0 and hi = ref n in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if Delta.compare_prov (fst new_arr.(mid)) p < 0 then lo := mid + 1
            else hi := mid
          done;
          !lo
        in
        let out = ref rs.rs_items in
        List.iter
          (fun (p, _) ->
            let jdx = bsearch p in
            if jdx >= n || Delta.compare_prov (fst new_arr.(jdx)) p <> 0 then
              raise Slow;
            match rs.rs_items.(jdx) with
            | Some (Hetstream.Conn c) ->
              let row = snd new_arr.(jdx) in
              let parent, children = key_of row in
              if
                parent <> c.parent
                || List.length children <> Array.length c.children
                || not
                     (List.for_all2
                        (fun a b -> a = b)
                        children
                        (Array.to_list c.children))
              then raise Slow;
              let attrs = Array.sub row attr_off attr_w in
              if not (Tuple.equal attrs c.attrs) then begin
                if !out == rs.rs_items then out := Array.copy rs.rs_items;
                !out.(jdx) <- Some (Hetstream.Conn { c with attrs });
                dirty := true
              end
            | Some (Hetstream.Row _) | None -> raise Slow)
          ops;
        rs.rs_items <- !out;
        next_id := start + rs.rs_nemit
      end
      else begin
        let n_old = Array.length old_arr and n_new = Array.length new_arr in
        let out = Array.make n_new None in
        let keys = rs.rs_keys in
        let i = ref 0 and j = ref 0 in
        while !i < n_old || !j < n_new do
          if !i < n_old && !j < n_new && old_arr.(!i) == new_arr.(!j) then begin
            (match rs.rs_items.(!i) with
            | None -> ()
            | Some (Hetstream.Conn c) as slot ->
              let id = fresh () in
              if id = c.id then out.(!j) <- slot
              else begin
                out.(!j) <- Some (Hetstream.Conn { c with id });
                dirty := true
              end
            | Some (Hetstream.Row _) -> raise Slow);
            incr i;
            incr j
          end
          else begin
            let cmp =
              if !i >= n_old then 1
              else if !j >= n_new then -1
              else Delta.compare_prov (fst old_arr.(!i)) (fst new_arr.(!j))
            in
            if cmp = 0 then begin
              (* same prov, new row value *)
              (match rs.rs_items.(!i) with
              | Some (Hetstream.Conn c) as slot ->
                let row = snd new_arr.(!j) in
                let parent, children = key_of row in
                if
                  parent <> c.parent
                  || List.length children <> Array.length c.children
                  || not
                       (List.for_all2
                          (fun a b -> a = b)
                          children
                          (Array.to_list c.children))
                then raise Slow;
                let attrs = Array.sub row attr_off attr_w in
                let id = fresh () in
                if id = c.id && Tuple.equal attrs c.attrs then
                  out.(!j) <- slot
                else begin
                  out.(!j) <- Some (Hetstream.Conn { c with id; attrs });
                  dirty := true
                end
              | Some (Hetstream.Row _) | None -> raise Slow);
              incr i;
              incr j
            end
            else if cmp < 0 then begin
              (* row removed *)
              (match rs.rs_items.(!i) with
              | None ->
                (* one duplicate fewer behind an earlier emitter *)
                let parent, children = key_of (snd old_arr.(!i)) in
                let kt = key_tuple parent children in
                (match Tuple.Tbl.find_opt keys kt with
                | Some c ->
                  decr c;
                  if !c = 0 then Tuple.Tbl.remove keys kt
                | None -> raise Slow)
              | Some it ->
                let kt =
                  match it with
                  | Hetstream.Conn c ->
                    key_tuple c.parent (Array.to_list c.children)
                  | Hetstream.Row _ -> raise Slow
                in
                (match Tuple.Tbl.find_opt keys kt with
                | Some c when !c = 1 -> Tuple.Tbl.remove keys kt
                | Some _ -> raise Slow (* a shadowed duplicate would emerge *)
                | None -> raise Slow);
                dirty := true);
              incr i
            end
            else begin
              (* row added *)
              let row = snd new_arr.(!j) in
              let parent, children = key_of row in
              let kt = key_tuple parent children in
              if Tuple.Tbl.mem keys kt then raise Slow;
              Tuple.Tbl.add keys kt (ref 1);
              out.(!j) <-
                Some
                  (Hetstream.Conn
                     {
                       rel = rs.rs_comp.Hetstream.comp_no;
                       id = fresh ();
                       parent;
                       children = Array.of_list children;
                       attrs = Array.sub row attr_off attr_w;
                     });
              dirty := true;
              incr j
            end
          end
        done;
        rs.rs_items <- out;
        rs.rs_start_id <- start;
        rs.rs_nemit <- !next_id - start
      end;
      if !dirty then changed.(n_nslots + ri) <- true)
    st.rstates;
  if not (Array.exists Fun.id changed) then st.stream
  else begin
    let l = ref (ncomp - 1) in
    while not changed.(!l) do
      decr l
    done;
    { Hetstream.header; items = rebuild_items st !l }
  end

let maintain (entry : entry) (st : state) (header : Hetstream.header) :
    Hetstream.t =
  let wdeltas = Hashtbl.create 8 in
  let delta_rows = ref 0 in
  List.iter
    (fun (t, v) ->
      match Base_table.deltas_since t v with
      | None -> raise (Fallback "delta log overflow")
      | Some ops ->
        delta_rows := !delta_rows + List.length ops;
        Hashtbl.replace wdeltas (Base_table.tid t) ops)
    entry.versions;
  let cached_rows =
    List.fold_left (fun acc (_, arr) -> acc + Array.length arr) 0 st.comps
  in
  if float_of_int !delta_rows > threshold () *. float_of_int (max 1 cached_rows)
  then raise (Fallback "cost gate");
  incr gen;
  let w = { Delta.wgen = !gen; wdeltas } in
  (* mirrors advance as the deltas flow; any failure from here on must
     discard the state, not retry *)
  let merged =
    List.map
      (fun (name, root) ->
        let drows = Delta.apply root w in
        let base = List.assoc name st.comps in
        let arr, ops = Delta.merge base drows in
        (name, ((base, arr, ops) : comp_window)))
      st.roots
  in
  st.comps <- List.map (fun (name, (_, arr, _)) -> (name, arr)) merged;
  let stream =
    if List.for_all (fun (_, (_, _, ops)) -> ops = []) merged then st.stream
    else
      match patch_items st header merged with
      | s ->
        stats.patched <- stats.patched + 1;
        s
      | exception Slow ->
        stats.reassembled <- stats.reassembled + 1;
        assemble_tracked st header
  in
  st.stream <- stream;
  (* Re-baseline under the publication lock (commit-consistent, same as
     the initial capture in [instrument]). *)
  entry.versions <-
    Mutex.protect Snapshot.publish_mu (fun () ->
        List.map (fun (t, _) -> (t, Base_table.version t)) entry.versions);
  stats.maintained <- stats.maintained + 1;
  stream

(* -- entry point -------------------------------------------------------- *)

(** Serve a stream-cache miss: maintain the registered state when one
    exists, build it on a refill of a previously seen query, and fall
    back to [body] (the executor) everywhere else.  [store] parks the
    returned stream under the caller's versioned cache key. *)
let extract ~(skey : string) ~(header : Hetstream.header)
    ~(rewritten : Xnf_rewrite.result)
    ~(plans : (string * Plan.compiled) list)
    ~(store : ?bytes:int -> Hetstream.t -> unit)
    (body : unit -> Hetstream.t) : Hetstream.t =
  Mutex.protect mu @@ fun () ->
  let entry = find_entry skey in
  let fallback_to_body () =
    let s = body () in
    entry.seen <- true;
    store s;
    s
  in
  match entry.st with
  | Some st -> (
    match maintain entry st header with
    | s ->
      (* the size estimate from the last full assembly is close enough
         for the cache's byte accounting; a fresh walk would cost more
         than the whole patch *)
      store ~bytes:st.approx s;
      s
    | exception (Fallback _ | Delta.Unmaintainable _ | Not_found) ->
      entry.st <- None;
      stats.fallbacks <- stats.fallbacks + 1;
      fallback_to_body ())
  | None ->
    if
      entry.seen && entry.failures < 2
      && List.for_all
           (fun name -> Plan.maintainable (List.assoc name plans).Plan.plan)
           (needed_names rewritten header)
    then
      match instrument entry ~header ~rewritten ~plans with
      | s ->
        store s;
        s
      | exception (Mismatch _ | Delta.Unmaintainable _) ->
        entry.failures <- entry.failures + 1;
        stats.mismatches <- stats.mismatches + 1;
        entry.st <- None;
        fallback_to_body ()
    else fallback_to_body ()
