(** The heterogeneous result stream of an XNF query (paper Sect. 5).

    "Each tuple either represents a row of a component table or a
    connection, i.e. an instance of a relationship.  Each tuple has a
    (system generated) identifier and also a component number [...].  A
    connection tuple contains the identifiers of the connected rows."

    Tuple identity follows XNF value semantics: a component tuple used
    multiple times within a view exists only once (object sharing), so
    identifiers are assigned per distinct component-tuple value. *)

open Relcore

type tuple_id = int

type item =
  | Row of { comp : int; id : tuple_id; values : Tuple.t }
  | Conn of {
      rel : int;
      id : tuple_id;
      parent : tuple_id;
      children : tuple_id array;
      attrs : Tuple.t; (* relationship attributes, [||] when none *)
    }

(** Static description of one component of the stream. *)
type comp_info = {
  comp_no : int;
  comp_name : string;
  comp_kind : [ `Node | `Rel of rel_meta ];
  comp_schema : Schema.t;
  take_cols : string list option; (* delivery-time projection *)
  in_take : bool;
}

and rel_meta = {
  rm_role : string;
  rm_parent : string; (* component names *)
  rm_children : string list;
}

type header = {
  components : comp_info array; (* indexed by comp_no *)
  root_components : string list;
}

type t = { header : header; items : item list }

let find_comp (h : header) name =
  let found = ref None in
  Array.iter
    (fun c -> if c.comp_name = name && !found = None then found := Some c)
    h.components;
  match !found with
  | Some c -> c
  | None -> Errors.semantic_error "unknown CO component %S" name

(** Stream statistics (used by tests and benches). *)
let counts (s : t) : (string * int) list =
  let tbl = Array.map (fun c -> (c.comp_name, ref 0)) s.header.components in
  List.iter
    (fun item ->
      let idx = match item with Row { comp; _ } -> comp | Conn { rel; _ } -> rel in
      incr (snd tbl.(idx)))
    s.items;
  Array.to_list (Array.map (fun (n, r) -> (n, !r)) tbl)

let total_items (s : t) = List.length s.items

(** Rough heap footprint — the result cache's size accounting. *)
let approx_bytes (s : t) : int =
  let value_bytes = function
    | Value.Str str -> 24 + String.length str
    | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ -> 16
  in
  let tuple_bytes vs =
    Array.fold_left (fun acc v -> acc + value_bytes v) 16 vs
  in
  List.fold_left
    (fun acc item ->
      match item with
      | Row { values; _ } -> acc + 48 + tuple_bytes values
      | Conn { children; attrs; _ } ->
        acc + 64 + (8 * Array.length children) + tuple_bytes attrs)
    256 s.items

(* -- binary serialization ---------------------------------------------- *)
(* A compact wire format: this is what "shipping the CO to the client in
   one call" means concretely; it is also reused by the CO cache's disk
   persistence. *)

let write_int buf n =
  (* zig-zag varint *)
  let n = (n lsl 1) lxor (n asr 62) in
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr (n land 0x7f))
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let write_string buf s =
  write_int buf (String.length s);
  Buffer.add_string buf s

let write_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char buf 'N'
  | Value.Bool b ->
    Buffer.add_char buf 'B';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Int i ->
    Buffer.add_char buf 'I';
    write_int buf i
  | Value.Float f ->
    (* full 8-byte IEEE pattern: a varint of [Int64.to_int] would drop
       bit 63, flipping the sign of every negative float (and of -0.) on
       the way back in *)
    Buffer.add_char buf 'F';
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Str s ->
    Buffer.add_char buf 'S';
    write_string buf s

type reader = { data : string; mutable pos : int }

let read_char r =
  let c = r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_int r =
  let rec go shift acc =
    let b = Char.code (read_char r) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  let n = go 0 0 in
  (n lsr 1) lxor (-(n land 1))

let read_string r =
  let len = read_int r in
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_value r : Value.t =
  match read_char r with
  | 'N' -> Value.Null
  | 'B' -> Value.Bool (read_char r = '\001')
  | 'I' -> Value.Int (read_int r)
  | 'F' ->
    let bits = String.get_int64_le r.data r.pos in
    r.pos <- r.pos + 8;
    Value.Float (Int64.float_of_bits bits)
  | 'S' -> Value.Str (read_string r)
  | c -> Errors.execution_error "corrupt stream: bad value tag %C" c

let write_schema buf (s : Schema.t) =
  let cols = Schema.columns s in
  write_int buf (List.length cols);
  List.iter
    (fun (c : Schema.column) ->
      write_string buf c.Schema.name;
      write_string buf (Dtype.to_string c.Schema.dtype);
      write_int buf (if c.Schema.nullable then 1 else 0))
    cols

let read_schema r : Schema.t =
  let n = read_int r in
  Schema.make
    (List.init n (fun _ ->
         let name = read_string r in
         let ty = Dtype.of_string (read_string r) in
         let nullable = read_int r = 1 in
         Schema.column ~nullable name ty))

let write_header buf (h : header) =
  write_int buf (Array.length h.components);
  Array.iter
    (fun c ->
      write_int buf c.comp_no;
      write_string buf c.comp_name;
      (match c.comp_kind with
      | `Node -> write_int buf 0
      | `Rel m ->
        write_int buf 1;
        write_string buf m.rm_role;
        write_string buf m.rm_parent;
        write_int buf (List.length m.rm_children);
        List.iter (write_string buf) m.rm_children);
      write_schema buf c.comp_schema;
      (match c.take_cols with
      | None -> write_int buf (-1)
      | Some cols ->
        write_int buf (List.length cols);
        List.iter (write_string buf) cols);
      write_int buf (if c.in_take then 1 else 0))
    h.components;
  write_int buf (List.length h.root_components);
  List.iter (write_string buf) h.root_components

let read_header r : header =
  let n = read_int r in
  let components =
    Array.init n (fun _ ->
        let comp_no = read_int r in
        let comp_name = read_string r in
        let comp_kind =
          match read_int r with
          | 0 -> `Node
          | 1 ->
            let rm_role = read_string r in
            let rm_parent = read_string r in
            let k = read_int r in
            let rm_children = List.init k (fun _ -> read_string r) in
            `Rel { rm_role; rm_parent; rm_children }
          | k -> Errors.execution_error "corrupt stream: component kind %d" k
        in
        let comp_schema = read_schema r in
        let take_cols =
          match read_int r with
          | -1 -> None
          | k -> Some (List.init k (fun _ -> read_string r))
        in
        let in_take = read_int r = 1 in
        { comp_no; comp_name; comp_kind; comp_schema; take_cols; in_take })
  in
  let k = read_int r in
  let root_components = List.init k (fun _ -> read_string r) in
  { components; root_components }

let write_item buf (item : item) =
  match item with
  | Row { comp; id; values } ->
    Buffer.add_char buf 'R';
    write_int buf comp;
    write_int buf id;
    write_int buf (Array.length values);
    Array.iter (write_value buf) values
  | Conn { rel; id; parent; children; attrs } ->
    Buffer.add_char buf 'C';
    write_int buf rel;
    write_int buf id;
    write_int buf parent;
    write_int buf (Array.length children);
    Array.iter (write_int buf) children;
    write_int buf (Array.length attrs);
    Array.iter (write_value buf) attrs

let read_item r : item =
  match read_char r with
  | 'R' ->
    let comp = read_int r in
    let id = read_int r in
    let w = read_int r in
    let values = Array.init w (fun _ -> read_value r) in
    Row { comp; id; values }
  | 'C' ->
    let rel = read_int r in
    let id = read_int r in
    let parent = read_int r in
    let k = read_int r in
    let children = Array.init k (fun _ -> read_int r) in
    let na = read_int r in
    let attrs = Array.init na (fun _ -> read_value r) in
    Conn { rel; id; parent; children; attrs }
  | c -> Errors.execution_error "corrupt stream: bad item tag %C" c

(** Serialize a stream: the single bulk message from server to client. *)
let serialize (s : t) : string =
  let buf = Buffer.create 4096 in
  write_header buf s.header;
  write_int buf (List.length s.items);
  List.iter (write_item buf) s.items;
  Buffer.contents buf

(** Structural stream equality via the wire format: headers, item order,
    tags, ids and every value byte must agree — the check the
    parallel-extraction equivalence tests rest on. *)
let equal (a : t) (b : t) = String.equal (serialize a) (serialize b)

let deserialize (data : string) : t =
  let r = { data; pos = 0 } in
  let header = read_header r in
  let n = read_int r in
  let items = List.init n (fun _ -> read_item r) in
  { header; items }
