(** Fixpoint evaluation of recursive COs (paper Sect. 2: "an XNF query
    may also specify a recursive CO being identified by a cycle in the
    query's schema graph.  This cycle basically defines a 'derivation
    rule' that iterates along the cycle's relationships to collect the
    tuples until a fixed point is reached").

    Semi-naive strategy: each node keeps the set of tuples found so far;
    each relationship join is re-evaluated against the {e delta} of its
    parent only, using a temporary base table swapped under the
    relationship's parent quantifier.  This evaluator is also correct
    for acyclic graphs (the fixpoint converges in one pass per level)
    and serves as a differential-derivation reference in the tests. *)

open Relcore
module Qgm = Starq.Qgm
module Db = Engine.Database

type node_state = {
  schema : Schema.t;
  found : Hetstream.tuple_id Tuple.Tbl.t;
  mutable delta : Tuple.t list;
  info : Hetstream.comp_info;
}

let take_sets (ast : Xnf_ast.query) =
  match ast.Xnf_ast.take with
  | Xnf_ast.Take_all ->
    ( List.map (fun (t : Xnf_ast.table_def) -> t.Xnf_ast.tname) ast.Xnf_ast.tables,
      List.map (fun (r : Xnf_ast.relate_def) -> r.Xnf_ast.rname) ast.Xnf_ast.relates
    )
  | Xnf_ast.Take_items items ->
    let names = List.map (fun (i : Xnf_ast.take_item) -> i.Xnf_ast.take_name) items in
    ( List.filter_map
        (fun (t : Xnf_ast.table_def) ->
          if List.mem t.Xnf_ast.tname names then Some t.Xnf_ast.tname else None)
        ast.Xnf_ast.tables,
      List.filter_map
        (fun (r : Xnf_ast.relate_def) ->
          if List.mem r.Xnf_ast.rname names then Some r.Xnf_ast.rname else None)
        ast.Xnf_ast.relates )

let take_cols_of (ast : Xnf_ast.query) n =
  match ast.Xnf_ast.take with
  | Xnf_ast.Take_all -> None
  | Xnf_ast.Take_items items ->
    List.find_map
      (fun (i : Xnf_ast.take_item) ->
        if i.Xnf_ast.take_name = n then i.Xnf_ast.take_cols else None)
      items

let graph_of box =
  { Qgm.top = box; order_by = []; limit = None; strip = None }

(* -- per-iteration plan skeleton ---------------------------------------- *)

(* The seed and step plans depend only on the operator's boxes, never on
   table contents — [Exec.run] reads base tables live, and each step
   re-fills its swapped-in delta table before running.  Compiling them
   anew on every extraction made the fixpoint pay full QGM planning per
   read; cache the compiled skeleton per operator instead.  Keyed by
   physical identity: the QGM graph is cyclic (that cycle {e is} the
   recursion), so structural hashing or comparison would not terminate. *)

type step = {
  sp_rel : Xnf_semantic.relbox;
  sp_tmp : Base_table.t; (* replaces the parent quantifier's box *)
  sp_plan : Optimizer.Plan.compiled;
  sp_name : string;
}

type skeleton = {
  sk_roots : (string * Optimizer.Plan.compiled) list;
  sk_steps : step list;
  sk_mu : Mutex.t; (* steps share delta tables; one fixpoint at a time *)
}

let skel_memo : (Xnf_semantic.xnf_op * skeleton) list ref = ref []
let skel_mu = Mutex.create ()
let skel_cap = 8

let build_skeleton (op : Xnf_semantic.xnf_op) : skeleton =
  let sk_roots =
    List.map
      (fun root ->
        let box = Option.get (Xnf_semantic.find_node op root) in
        (root, Optimizer.Planner.compile ~share:false (graph_of box)))
      op.Xnf_semantic.roots
  in
  let sk_steps =
    List.map
      (fun (name, (r : Xnf_semantic.relbox)) ->
        let parent_box =
          Option.get (Xnf_semantic.find_node op r.Xnf_semantic.rparent)
        in
        let parent_schema = Optimizer.Planner.schema_of_box parent_box in
        let tmp =
          Base_table.create
            ~name:("__delta_" ^ r.Xnf_semantic.rparent ^ "_" ^ name)
            parent_schema
        in
        r.Xnf_semantic.rparent_quant.Qgm.over <- Qgm.base_box tmp;
        let plan =
          Optimizer.Planner.compile ~share:false (graph_of r.Xnf_semantic.rbox)
        in
        { sp_rel = r; sp_tmp = tmp; sp_plan = plan; sp_name = name })
      op.Xnf_semantic.rel_boxes
  in
  { sk_roots; sk_steps; sk_mu = Mutex.create () }

let skeleton_of (op : Xnf_semantic.xnf_op) : skeleton =
  Mutex.protect skel_mu @@ fun () ->
  match List.find_opt (fun (o, _) -> o == op) !skel_memo with
  | Some (_, sk) -> sk
  | None ->
    let sk = build_skeleton op in
    let kept =
      if List.length !skel_memo >= skel_cap then
        List.filteri (fun i _ -> i < skel_cap - 1) !skel_memo
      else !skel_memo
    in
    skel_memo := (op, sk) :: kept;
    sk

(** Evaluate an XNF operator by fixpoint iteration. *)
let extract (_db : Db.t) (op : Xnf_semantic.xnf_op) : Hetstream.t =
  let ast = op.Xnf_semantic.xquery in
  let take_nodes, take_rels = take_sets ast in
  (* header: nodes in declaration order, then relationships *)
  let node_names = List.map fst op.Xnf_semantic.node_boxes in
  let nnodes = List.length node_names in
  let node_infos =
    List.mapi
      (fun i (name, box) ->
        {
          Hetstream.comp_no = i;
          comp_name = name;
          comp_kind = `Node;
          comp_schema = Optimizer.Planner.schema_of_box box;
          take_cols = take_cols_of ast name;
          in_take = List.mem name take_nodes;
        })
      op.Xnf_semantic.node_boxes
  in
  let rel_infos =
    List.mapi
      (fun i (name, (r : Xnf_semantic.relbox)) ->
        {
          Hetstream.comp_no = nnodes + i;
          comp_name = name;
          comp_kind =
            `Rel
              {
                Hetstream.rm_role = r.Xnf_semantic.rrole;
                rm_parent = r.Xnf_semantic.rparent;
                rm_children = r.Xnf_semantic.rchildren;
              };
          comp_schema = r.Xnf_semantic.rattr_schema;
          take_cols = None;
          in_take = List.mem name take_rels;
        })
      op.Xnf_semantic.rel_boxes
  in
  let header =
    {
      Hetstream.components = Array.of_list (node_infos @ rel_infos);
      root_components = op.Xnf_semantic.roots;
    }
  in
  let items = ref [] in
  let emit item = items := item :: !items in
  let id_counter = ref 0 in
  let fresh () =
    incr id_counter;
    !id_counter
  in
  (* node states *)
  let states : (string, node_state) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i (name, box) ->
      Hashtbl.replace states name
        {
          schema = Optimizer.Planner.schema_of_box box;
          found = Tuple.Tbl.create 256;
          delta = [];
          info = List.nth node_infos i;
        })
    op.Xnf_semantic.node_boxes;
  let discover name (row : Tuple.t) : Hetstream.tuple_id =
    let st = Hashtbl.find states name in
    match Tuple.Tbl.find_opt st.found row with
    | Some id -> id
    | None ->
      let id = fresh () in
      Tuple.Tbl.add st.found row id;
      st.delta <- row :: st.delta;
      if st.info.Hetstream.in_take then
        emit (Hetstream.Row { comp = st.info.Hetstream.comp_no; id; values = row });
      id
  in
  let sk = skeleton_of op in
  Mutex.protect sk.sk_mu @@ fun () ->
  (* seed the roots with their defining queries *)
  List.iter
    (fun (root, plan) ->
      List.iter (fun row -> ignore (discover root row)) (Executor.Exec.run plan))
    sk.sk_roots;
  (* per-relationship iteration step: a temp table replaces the parent *)
  let rel_steps =
    List.map
      (fun sp ->
        let r = sp.sp_rel in
        let parent_span = r.Xnf_semantic.rparent_span in
        let child_spans = r.Xnf_semantic.rchild_spans in
        let attr_off, attr_w = r.Xnf_semantic.rattr_span in
        let info =
          List.find
            (fun (i : Hetstream.comp_info) ->
              i.Hetstream.comp_name = sp.sp_name)
            rel_infos
        in
        let conn_seen = Tuple.Tbl.create 256 in
        ( sp.sp_name,
          r,
          sp.sp_tmp,
          sp.sp_plan,
          parent_span,
          child_spans,
          (attr_off, attr_w),
          info,
          conn_seen ))
      sk.sk_steps
  in
  (* fixpoint loop with a conservative safety bound *)
  let max_rounds = 100_000 in
  let rec loop round =
    if round > max_rounds then
      Errors.execution_error "recursive CO did not converge after %d rounds"
        max_rounds;
    (* snapshot and clear deltas *)
    let deltas =
      Hashtbl.fold (fun name st acc -> (name, st.delta) :: acc) states []
    in
    Hashtbl.iter (fun _ st -> st.delta <- []) states;
    let any = List.exists (fun (_, d) -> d <> []) deltas in
    if any then begin
      List.iter
        (fun (_name, r, tmp, plan, (poff, pw), child_spans, (attr_off, attr_w),
              info, conn_seen) ->
          let parent_delta = List.assoc r.Xnf_semantic.rparent deltas in
          if parent_delta <> [] then begin
            Base_table.truncate tmp;
            List.iter (fun row -> ignore (Base_table.insert tmp row)) parent_delta;
            let rows = Executor.Exec.run plan in
            List.iter
              (fun row ->
                let parent_part = Array.sub row poff pw in
                let parent_id =
                  discover r.Xnf_semantic.rparent parent_part
                in
                let child_ids =
                  List.map
                    (fun (ch, (off, w)) -> discover ch (Array.sub row off w))
                    child_spans
                in
                if info.Hetstream.in_take then begin
                  let key =
                    Array.of_list
                      (List.map (fun i -> Value.Int i) (parent_id :: child_ids))
                  in
                  if not (Tuple.Tbl.mem conn_seen key) then begin
                    Tuple.Tbl.add conn_seen key ();
                    emit
                      (Hetstream.Conn
                         {
                           rel = info.Hetstream.comp_no;
                           id = fresh ();
                           parent = parent_id;
                           children = Array.of_list child_ids;
                           attrs = Array.sub row attr_off attr_w;
                         })
                  end
                end)
              rows
          end)
        rel_steps;
      loop (round + 1)
    end
  in
  loop 0;
  { Hetstream.header; items = List.rev !items }
