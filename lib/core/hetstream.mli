(** The heterogeneous result stream of an XNF query (paper Sect. 5):
    component rows and connection tuples, each with a system-generated
    identifier; connections carry the identifiers of their partners.
    Identity follows XNF value semantics — a component tuple used
    multiple times exists once (object sharing). *)

open Relcore

type tuple_id = int

type item =
  | Row of { comp : int; id : tuple_id; values : Tuple.t }
  | Conn of {
      rel : int;
      id : tuple_id;
      parent : tuple_id;
      children : tuple_id array;
      attrs : Tuple.t; (* relationship attributes, [||] when none *)
    }

type comp_info = {
  comp_no : int;
  comp_name : string;
  comp_kind : [ `Node | `Rel of rel_meta ];
  comp_schema : Schema.t;
  take_cols : string list option;
  in_take : bool;
}

and rel_meta = {
  rm_role : string;
  rm_parent : string;
  rm_children : string list;
}

type header = {
  components : comp_info array; (* indexed by comp_no *)
  root_components : string list;
}

type t = { header : header; items : item list }

val find_comp : header -> string -> comp_info
val counts : t -> (string * int) list
val total_items : t -> int

val approx_bytes : t -> int
(** Rough heap footprint (result-cache size accounting). *)

(** {2 Wire format}

    The single bulk message from server to client (Sect. 5.1's "only one
    call instead of a call for each tuple"); also used by cache
    persistence.  The low-level reader/writer primitives are exposed for
    {!Cocache.Persist}. *)

val equal : t -> t -> bool
(** Structural equality via the wire format: item order, tags, ids and
    every value byte must agree (byte-identical streams). *)

val serialize : t -> string
val deserialize : string -> t

val write_int : Buffer.t -> int -> unit
val write_string : Buffer.t -> string -> unit
val write_value : Buffer.t -> Value.t -> unit
val write_schema : Buffer.t -> Schema.t -> unit
val write_header : Buffer.t -> header -> unit
val write_item : Buffer.t -> item -> unit

type reader = { data : string; mutable pos : int }

val read_char : reader -> char
val read_int : reader -> int
val read_string : reader -> string
val read_value : reader -> Value.t
val read_schema : reader -> Schema.t
val read_header : reader -> header
val read_item : reader -> item
