(** The XNF compilation and extraction pipeline (Fig. 2 / Fig. 7):

    parse → XNF semantics (XNF QGM) → XNF semantic rewrite (NF QGM,
    shared derivations) → NF rule rewrite → plan optimization with
    cross-output CSE → set-oriented execution producing the
    heterogeneous stream. *)

open Relcore
module Qgm = Starq.Qgm
module Plan = Optimizer.Plan
module Db = Engine.Database

let log_src = Logs.Src.create "xnfdb.xnf" ~doc:"XNF compilation and extraction"

module Log = (val Logs.src_log log_src : Logs.LOG)

type compiled = {
  db : Db.t;
  ast : Xnf_ast.query;
  op : Xnf_semantic.xnf_op;
  rewritten : Xnf_rewrite.result;
  plans : (string * Plan.compiled) list; (* nodes first, derivation order *)
  header : Hetstream.header;
  rewrite_stats : Starq.Engine.stats;
  recursive : bool;
}

(** Compile an XNF query AST against a database.

    [share]: enable common-subexpression sharing (the Table 1 ablation).
    [nf_rewrite]: run the shared NF rule engine over the produced graphs. *)
let compile_ast ?(share = true) ?(nf_rewrite = true) (db : Db.t)
    (ast : Xnf_ast.query) : compiled =
  let recursive = Xnf_ast.is_recursive ast in
  let op = Xnf_semantic.analyze (Db.catalog db) ast in
  if recursive then
    (* plans are built per-iteration by the recursive evaluator *)
    {
      db;
      ast;
      op;
      rewritten =
        {
          Xnf_rewrite.op;
          node_outputs = [];
          rel_outputs = [];
          take_nodes = [];
          take_rels = [];
        };
      plans = [];
      header = { Hetstream.components = [||]; root_components = op.Xnf_semantic.roots };
      rewrite_stats = [];
      recursive;
    }
  else begin
    let rewritten = Xnf_rewrite.rewrite op in
    let outputs = Xnf_rewrite.output_boxes rewritten in
    let rewrite_stats =
      if nf_rewrite then Starq.Engine.run (List.map snd outputs) else []
    in
    let plans = Optimizer.Planner.compile_many ~share outputs in
    (* header: nodes first (derivation order), then relationships *)
    let node_infos =
      List.mapi
        (fun i (n : Xnf_rewrite.node_output) ->
          let plan = List.assoc n.Xnf_rewrite.no_name plans in
          (* TAKE column projection applies to the shipped rows *)
          let schema =
            match n.Xnf_rewrite.no_take_cols with
            | None -> plan.Plan.out_schema
            | Some cols ->
              Schema.make
                (List.map
                   (fun c ->
                     let i = Schema.find plan.Plan.out_schema c in
                     let col = Schema.column_at plan.Plan.out_schema i in
                     Schema.column ~nullable:col.Schema.nullable col.Schema.name
                       col.Schema.dtype)
                   cols)
          in
          {
            Hetstream.comp_no = i;
            comp_name = n.Xnf_rewrite.no_name;
            comp_kind = `Node;
            comp_schema = schema;
            take_cols = n.Xnf_rewrite.no_take_cols;
            in_take = List.mem n.Xnf_rewrite.no_name rewritten.Xnf_rewrite.take_nodes;
          })
        rewritten.Xnf_rewrite.node_outputs
    in
    let nnodes = List.length node_infos in
    let rel_infos =
      List.mapi
        (fun i (ro : Xnf_rewrite.rel_output) ->
          {
            Hetstream.comp_no = nnodes + i;
            comp_name = ro.Xnf_rewrite.ro_name;
            comp_kind =
              `Rel
                {
                  Hetstream.rm_role = ro.Xnf_rewrite.ro_role;
                  rm_parent = ro.Xnf_rewrite.ro_parent;
                  rm_children = ro.Xnf_rewrite.ro_children;
                };
            comp_schema = ro.Xnf_rewrite.ro_attr_schema;
            take_cols = None;
            in_take = List.mem ro.Xnf_rewrite.ro_name rewritten.Xnf_rewrite.take_rels;
          })
        rewritten.Xnf_rewrite.rel_outputs
    in
    let header =
      {
        Hetstream.components = Array.of_list (node_infos @ rel_infos);
        root_components = op.Xnf_semantic.roots;
      }
    in
    { db; ast; op; rewritten; plans; header; rewrite_stats; recursive }
  end

exception Cached_compiled of compiled
(** Payload constructor for XNF compilations parked in the database's
    plugin cache (cleared together with the plan cache on DDL). *)

let compile ?share ?nf_rewrite ?cache (db : Db.t) (text : string) : compiled =
  let compile_now () =
    let c = compile_ast ?share ?nf_rewrite db (Xnf_parser.parse text) in
    Log.debug (fun m ->
        m "compiled XNF query: %d outputs, recursive=%b, rules fired: %s"
          (List.length c.plans) c.recursive
          (String.concat ", "
             (List.map
                (fun (n, k) -> Printf.sprintf "%s x%d" n k)
                c.rewrite_stats)));
    c
  in
  let use =
    match cache with Some b -> b | None -> Db.plan_cache_enabled ()
  in
  if not use then compile_now ()
  else begin
    let key =
      Printf.sprintf "xnfplan|%b|%b|%s"
        (Option.value share ~default:true)
        (Option.value nf_rewrite ~default:true)
        (Db.normalize_query_text text)
    in
    match Db.plugin_cache_find db key with
    | Some (Cached_compiled c) -> c
    | Some _ | None ->
      let c = compile_now () in
      Db.plugin_cache_store db key (Cached_compiled c);
      c
  end

(* -- extraction ---------------------------------------------------------- *)

(** Assemble the heterogeneous stream from per-output table queues:
    assign tuple identifiers (one per distinct component-tuple value:
    object sharing) and resolve connection partner ids.  [batches_of] is
    called once per needed output (node outputs always; relationship
    outputs only when in TAKE); its batches are consumed in place,
    without flattening to row lists. *)
let assemble (c : compiled) (batches_of : string -> Batch.t list) : Hetstream.t =
  let id_counter = ref 0 in
  let fresh () =
    incr id_counter;
    !id_counter
  in
  (* per-node value -> id maps *)
  let id_maps : (string, Hetstream.tuple_id Tuple.Tbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let items = ref [] in
  let emit item = items := item :: !items in
  (* nodes in derivation order *)
  List.iter
    (fun (n : Xnf_rewrite.node_output) ->
      let name = n.Xnf_rewrite.no_name in
      let info = Hetstream.find_comp c.header name in
      let plan = List.assoc name c.plans in
      let project =
        match n.Xnf_rewrite.no_take_cols with
        | None -> Fun.id
        | Some cols ->
          let idxs =
            Array.of_list
              (List.map (Schema.find plan.Plan.out_schema) cols)
          in
          fun row -> Tuple.project row idxs
      in
      let map = Tuple.Tbl.create 256 in
      Hashtbl.replace id_maps name map;
      Batch.list_iter
        (fun row ->
          if not (Tuple.Tbl.mem map row) then begin
            let id = fresh () in
            Tuple.Tbl.add map row id;
            if info.Hetstream.in_take then
              emit
                (Hetstream.Row
                   { comp = info.Hetstream.comp_no; id; values = project row })
          end)
        (batches_of name))
    c.rewritten.Xnf_rewrite.node_outputs;
  (* relationships: split each joined row into partner tuples, map to ids *)
  List.iter
    (fun (ro : Xnf_rewrite.rel_output) ->
      let name = ro.Xnf_rewrite.ro_name in
      let info = Hetstream.find_comp c.header name in
      if info.Hetstream.in_take then begin
        let parent_span = ro.Xnf_rewrite.ro_parent_span in
        let child_spans = ro.Xnf_rewrite.ro_child_spans in
        let attr_off, attr_w = ro.Xnf_rewrite.ro_attr_span in
        let lookup comp (off, w) row =
          let part = Array.sub row off w in
          match Tuple.Tbl.find_opt (Hashtbl.find id_maps comp) part with
          | Some id -> id
          | None ->
            Errors.execution_error
              "connection references a %s tuple missing from its component"
              comp
        in
        let seen = Tuple.Tbl.create 256 in
        Batch.list_iter
          (fun row ->
            let parent = lookup ro.Xnf_rewrite.ro_parent parent_span row in
            let children =
              Array.of_list
                (List.map (fun (ch, span) -> lookup ch span row) child_spans)
            in
            (* a connection is a set-level fact: dedupe *)
            let key =
              Array.of_list
                (Value.Int parent
                :: Array.to_list (Array.map (fun i -> Value.Int i) children))
            in
            if not (Tuple.Tbl.mem seen key) then begin
              Tuple.Tbl.add seen key ();
              emit
                (Hetstream.Conn
                   {
                     rel = info.Hetstream.comp_no;
                     id = fresh ();
                     parent;
                     children;
                     attrs = Array.sub row attr_off attr_w;
                   })
            end)
          (batches_of name)
      end)
    c.rewritten.Xnf_rewrite.rel_outputs;
  { Hetstream.header = c.header; items = List.rev !items }

(** Sequential extraction: execute all output plans under one execution
    context (shared derivations materialize once). *)
let extract_nonrecursive ?(ctx = Executor.Exec.make_ctx ()) (c : compiled) :
    Hetstream.t =
  assemble c (fun name ->
      Executor.Exec.run_batches ~ctx (List.assoc name c.plans))

exception Cached_stream of Hetstream.t
(** {!Executor.Result_cache} payload constructor for assembled CO-view
    streams. *)

(** Result-cache key for a whole extraction, or [None] when the result
    is not cacheable (recursive COs build plans per fixpoint iteration).
    The key covers everything [assemble] depends on — per-plan
    structural fingerprints, header/connection layout — plus the version
    fragment of every table read, computed {e at lookup time}: any DML
    (or txn commit/rollback) against those tables moves a version and
    the stale entry is simply never found again. *)
let stream_key ~(versions : bool) (c : compiled) : string option =
  if c.recursive || c.plans = [] then None
  else begin
    let buf = Buffer.create 256 in
    let add = Buffer.add_string buf in
    add "xnfres|";
    Array.iter
      (fun (ci : Hetstream.comp_info) ->
        add ci.Hetstream.comp_name;
        add
          (match ci.Hetstream.comp_kind with
          | `Node -> ":n"
          | `Rel m ->
            Printf.sprintf ":r(%s<-%s->%s)" m.Hetstream.rm_parent
              m.Hetstream.rm_role
              (String.concat "," m.Hetstream.rm_children));
        if ci.Hetstream.in_take then add "!";
        (match ci.Hetstream.take_cols with
        | Some cols -> add ("[" ^ String.concat "," cols ^ "]")
        | None -> ());
        add ";")
      c.header.Hetstream.components;
    add (String.concat "," c.header.Hetstream.root_components);
    List.iter
      (fun (ro : Xnf_rewrite.rel_output) ->
        let span (o, w) = Printf.sprintf "%d+%d" o w in
        add
          (Printf.sprintf "|%s@%s/%s/%s" ro.Xnf_rewrite.ro_name
             (span ro.Xnf_rewrite.ro_parent_span)
             (String.concat ","
                (List.map
                   (fun (ch, s) -> ch ^ "@" ^ span s)
                   ro.Xnf_rewrite.ro_child_spans))
             (span ro.Xnf_rewrite.ro_attr_span)))
      c.rewritten.Xnf_rewrite.rel_outputs;
    List.iter
      (fun (name, (p : Plan.compiled)) ->
        add
          (if versions then
             Printf.sprintf "|%s=%s#%s" name
               (Plan.fingerprint p.Plan.plan)
               (Plan.version_key p.Plan.plan)
           else Printf.sprintf "|%s=%s" name (Plan.fingerprint p.Plan.plan)))
      c.plans;
    Some (Buffer.contents buf)
  end

let stream_cache_key (c : compiled) : string option =
  stream_key ~versions:true c

(** The version-free part of {!stream_cache_key} — the identity under
    which {!Xnf_ivm} registers maintainer state that survives DML. *)
let structural_key (c : compiled) : string option =
  stream_key ~versions:false c

(** Run [body] through the stream cache when [use] allows it.  On a
    version-key miss with [XNFDB_IVM] on, {!Xnf_ivm} first tries to
    maintain (or instrument) the cached extraction instead of running
    [body]; with the knob off this is exactly the old store-on-miss. *)
let with_stream_cache ~use (c : compiled) (body : unit -> Hetstream.t) :
    Hetstream.t =
  match (if use then stream_cache_key c else None) with
  | None -> body ()
  | Some key -> (
    match Executor.Result_cache.find key with
    | Some (Cached_stream s) -> s
    | Some _ | None ->
      let store ?bytes s =
        let bytes =
          match bytes with
          | Some b -> b
          | None -> Hetstream.approx_bytes s
        in
        Executor.Result_cache.store key ~bytes (Cached_stream s)
      in
      (match (if Xnf_ivm.enabled () then structural_key c else None) with
      | Some skey ->
        Xnf_ivm.extract ~skey ~header:c.header ~rewritten:c.rewritten
          ~plans:c.plans ~store body
      | None ->
        let s = body () in
        store s;
        s))

let use_result_cache = function
  | Some b -> b
  | None -> Executor.Result_cache.enabled ()

(** Extract the CO defined by a compiled XNF query (dispatches to the
    fixpoint evaluator for recursive COs).  [cache] (default: the
    [XNFDB_RESULT_CACHE_MB] knob) consults the cross-query result cache:
    a warm repeat returns the previously assembled stream without
    touching the executor. *)
let extract ?ctx ?cache (c : compiled) : Hetstream.t =
  if c.recursive then Xnf_recursive.extract c.db c.op
  else begin
    (* a snapshot (MVCC-lite) context must bypass the stream cache and
       IVM maintenance: both are keyed to — and advance — live table
       versions, not the reader's pinned epoch *)
    let use =
      use_result_cache cache
      && (match ctx with
         | Some ctx -> ctx.Executor.Exec.snapshot = None
         | None -> true)
    in
    with_stream_cache ~use c (fun () ->
        let ctx =
          match ctx with
          | Some ctx -> ctx
          | None -> Executor.Exec.make_ctx ~result_cache:use ()
        in
        extract_nonrecursive ~ctx c)
  end

(** Parallel extraction on the shared domain pool (the paper's Sect. 6
    outlook: "set-oriented specification of COs as done in XNF
    particularly lends itself to exploitation of parallelism
    technology").

    Two-phase schedule over the per-component output plans:

    1. plans the morsel-parallel executor can stream run one after
       another, each fanned out {e within} the plan across the pool
       ([Exec_par]); their shared-derivation drains populate the common
       CSE cache as a side effect;
    2. the remaining plans (correlated probes, LIMIT) first get every
       reachable common subexpression forced, then run {e concurrently},
       one plan per pool task, each domain reading the now-immutable
       shared cache.

    [assemble] then merges per-component batch lists in component order,
    so the heterogeneous stream is bit-identical to {!extract}.  Falls
    back to the fixpoint evaluator for recursive COs.  [domains]
    defaults to [Relcore.Pool.default_domains ()] (the [XNFDB_DOMAINS]
    knob); [morsel_rows]/[threshold] are forwarded to [Exec_par]. *)
let extract_parallel ?domains ?morsel_rows ?threshold ?cache ?snapshot
    (c : compiled) : Hetstream.t =
  let domains =
    match domains with Some d -> d | None -> Relcore.Pool.default_domains ()
  in
  (* snapshot readers bypass both cache levels (see {!extract}) *)
  let use = use_result_cache cache && snapshot = None in
  if c.recursive then Xnf_recursive.extract c.db c.op
  else if domains <= 1 then
    with_stream_cache ~use c (fun () ->
        extract_nonrecursive
          ~ctx:(Executor.Exec.make_ctx ~result_cache:use ?snapshot ()) c)
  else
    with_stream_cache ~use c @@ fun () ->
    let ctx = Executor.Exec.make_ctx ~result_cache:use ?snapshot () in
    (* which outputs will actually run? *)
    let needed =
      List.map (fun (n : Xnf_rewrite.node_output) -> n.Xnf_rewrite.no_name)
        c.rewritten.Xnf_rewrite.node_outputs
      @ List.filter_map
          (fun (ro : Xnf_rewrite.rel_output) ->
            if List.mem ro.Xnf_rewrite.ro_name c.rewritten.Xnf_rewrite.take_rels
            then Some ro.Xnf_rewrite.ro_name
            else None)
          c.rewritten.Xnf_rewrite.rel_outputs
    in
    let plans = List.map (fun name -> (name, List.assoc name c.plans)) needed in
    let par, seq =
      List.partition
        (fun ((_, p) : string * Plan.compiled) ->
          Executor.Exec_par.parallelizable p.Plan.plan)
        plans
    in
    (* phase 1: intra-plan parallelism, one plan at a time *)
    let par_results =
      List.map
        (fun (name, p) ->
          ( name,
            Executor.Exec_par.run_batches ~ctx ~domains ?morsel_rows ?threshold
              p ))
        par
    in
    (* phase 2: inter-plan parallelism over the frozen shared cache;
       the CSE derivations themselves fan out across the pool first
       (dependency waves), instead of materializing one by one *)
    let seq_results =
      match seq with
      | [] -> []
      | _ ->
        Executor.Exec_par.force_shared_parallel ctx ~domains
          (List.map (fun (_, (p : Plan.compiled)) -> p.Plan.plan) seq);
        let arr = Array.of_list seq in
        let out = Array.make (Array.length arr) [] in
        let next = Atomic.make 0 in
        Relcore.Pool.run ~domains:(min domains (Array.length arr)) (fun _ ->
            let my_ctx = Executor.Exec.sibling_ctx ctx in
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < Array.length arr then begin
                out.(i) <- Executor.Exec.run_batches ~ctx:my_ctx (snd arr.(i));
                loop ()
              end
            in
            loop ());
        Array.to_list (Array.mapi (fun i bs -> (fst arr.(i), bs)) out)
    in
    let results = par_results @ seq_results in
    assemble c (fun name -> List.assoc name results)

(** One-call convenience: compile and extract.  [cache] governs both
    levels: the compiled-query cache and the result cache. *)
let run ?share ?nf_rewrite ?cache ?ctx (db : Db.t) (text : string) : Hetstream.t =
  extract ?ctx ?cache (compile ?share ?nf_rewrite ?cache db text)

(** Compile and extract a stored XNF view by name. *)
let run_view ?share ?nf_rewrite ?cache ?ctx (db : Db.t) (view_name : string) :
    Hetstream.t =
  match Catalog.find_view_opt (Db.catalog db) view_name with
  | Some { Catalog.language = `Xnf; text; _ } ->
    run ?share ?nf_rewrite ?cache ?ctx db text
  | Some { Catalog.language = `Sql; _ } ->
    Errors.semantic_error "view %S is a plain SQL view, not an XNF view"
      view_name
  | None -> Errors.catalog_error "unknown view %S" view_name

(** The text of a stored XNF view, for analysis paths that re-enter
    {!val:explain_analyze} with query text. *)
let view_text (db : Db.t) (view_name : string) : string =
  match Catalog.find_view_opt (Db.catalog db) view_name with
  | Some { Catalog.language = `Xnf; text; _ } -> text
  | Some { Catalog.language = `Sql; _ } ->
    Errors.semantic_error "view %S is a plain SQL view, not an XNF view"
      view_name
  | None -> Errors.catalog_error "unknown view %S" view_name

(* -- view composition ------------------------------------------------------ *)

(** Expansion of [view.component] table references (closure of the model
    under its operations, paper Sect. 2): compile the referenced XNF
    view against the catalog and splice in the component's derived
    (reachability-rewritten) box.  A guard rejects cyclic view chains. *)
let expanding : (string, unit) Hashtbl.t = Hashtbl.create 4

let expand_component (cat : Catalog.t) ~view ~component : Qgm.box =
  match Catalog.find_view_opt cat view with
  | None -> Errors.catalog_error "unknown view %S" view
  | Some { Catalog.language = `Sql; _ } ->
    Errors.semantic_error
      "%S is a plain SQL view; only XNF views expose components" view
  | Some { Catalog.language = `Xnf; text; _ } ->
    let key = String.lowercase_ascii view in
    if Hashtbl.mem expanding key then
      Errors.semantic_error "cyclic view reference through %S" view;
    Hashtbl.add expanding key ();
    Fun.protect
      ~finally:(fun () -> Hashtbl.remove expanding key)
      (fun () ->
        let ast = Xnf_parser.parse text in
        if Xnf_ast.is_recursive ast then
          Errors.unsupported
            "components of recursive XNF views cannot be composed";
        let op = Xnf_semantic.analyze cat ast in
        let rewritten = Xnf_rewrite.rewrite op in
        match
          List.find_opt
            (fun (n : Xnf_rewrite.node_output) -> n.Xnf_rewrite.no_name = component)
            rewritten.Xnf_rewrite.node_outputs
        with
        | Some n -> n.Xnf_rewrite.no_box
        | None -> (
          match
            List.find_opt
              (fun (r : Xnf_rewrite.rel_output) -> r.Xnf_rewrite.ro_name = component)
              rewritten.Xnf_rewrite.rel_outputs
          with
          | Some r -> r.Xnf_rewrite.ro_box
          | None ->
            Errors.semantic_error "view %S has no component %S" view component))

let () = Starq.Build.xnf_component_expander := Some expand_component

(** EXPLAIN for XNF queries: the XNF operator, the rewritten graphs and
    the plans with their sharing structure. *)
let explain (db : Db.t) (text : string) : string =
  let c = compile db text in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== XNF operator ==\n";
  Buffer.add_string buf (Xnf_semantic.dump c.op);
  if not c.recursive then begin
    Buffer.add_string buf "== plans ==\n";
    List.iter
      (fun (name, (p : Plan.compiled)) ->
        Buffer.add_string buf (Printf.sprintf "-- %s --\n" name);
        Buffer.add_string buf (Plan.explain p.Plan.plan))
      c.plans
  end
  else Buffer.add_string buf "(recursive CO: fixpoint evaluation)\n";
  Buffer.contents buf

(** EXPLAIN ANALYZE for XNF extraction: run every output plan under one
    instrumented context (sequential — per-operator clocks need a single
    owning domain) and report per-operator estimated vs actual rows,
    q-error and inclusive wall time, one section per output.  Bypasses
    the result cache so the plans actually execute; the compiled-query
    cache stays on (plans are version-independent). *)
let explain_analyze (db : Db.t) (text : string) : string =
  let t0 = Executor.Opstats.now () in
  let c = compile db text in
  if c.recursive then
    "== plans (analyzed) ==\n\
     (recursive CO: fixpoint evaluation builds plans per iteration; \
     per-operator attribution is not available)\n"
  else begin
    let acc =
      Executor.Opstats.create
        (List.map (fun (name, (p : Plan.compiled)) -> (name, p.Plan.plan)) c.plans)
    in
    let ctx = Executor.Exec.make_ctx ~result_cache:false () in
    ctx.Executor.Exec.analyze <- Some acc;
    let stream = extract_nonrecursive ~ctx c in
    acc.Executor.Opstats.total_wall <- Executor.Opstats.now () -. t0;
    let buf = Buffer.create 512 in
    Buffer.add_string buf "== plans (analyzed) ==\n";
    Buffer.add_string buf (Executor.Opstats.render acc);
    Buffer.add_string buf
      (Printf.sprintf "stream items: %d\n" (List.length stream.Hetstream.items));
    Buffer.contents buf
  end
