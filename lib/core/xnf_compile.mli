(** The XNF compilation and extraction pipeline (paper Fig. 2 / Fig. 7):
    parse, XNF semantics, XNF semantic rewrite, shared NF rule rewrite,
    plan optimization with cross-output CSE, set-oriented execution into
    the heterogeneous stream. *)

open Relcore
module Plan = Optimizer.Plan
module Db = Engine.Database

type compiled = {
  db : Db.t;
  ast : Xnf_ast.query;
  op : Xnf_semantic.xnf_op;
  rewritten : Xnf_rewrite.result;
  plans : (string * Plan.compiled) list; (* nodes first, derivation order *)
  header : Hetstream.header;
  rewrite_stats : Starq.Engine.stats;
  recursive : bool;
}

val compile_ast :
  ?share:bool -> ?nf_rewrite:bool -> Db.t -> Xnf_ast.query -> compiled
(** [share] enables common-subexpression sharing (the Table-1 ablation);
    [nf_rewrite] runs the shared NF rule engine. *)

exception Cached_compiled of compiled
(** Plugin-cache payload constructor for compiled XNF queries (stored in
    [Db.plugin_cache_*], invalidated with the plan cache on DDL). *)

val compile :
  ?share:bool -> ?nf_rewrite:bool -> ?cache:bool -> Db.t -> string -> compiled
(** Goes through the database's compiled-query cache keyed by normalized
    text × flags; [cache] (default: [Db.plan_cache_enabled ()]) bypasses
    it when [false]. *)

val assemble : compiled -> (string -> Batch.t list) -> Hetstream.t
(** Assemble the stream from per-output table queues (batch lists,
    consumed without flattening): id assignment (object sharing) and
    connection resolution. *)

exception Cached_stream of Hetstream.t
(** {!Executor.Result_cache} payload constructor for assembled CO-view
    streams. *)

val stream_cache_key : compiled -> string option
(** Result-cache key for a whole extraction: plan fingerprints, header
    and connection layout, and the version of every table read (looked
    up fresh on each call, so DML invalidates by key drift).  [None]
    when uncacheable (recursive COs). *)

val extract : ?ctx:Executor.Exec.ctx -> ?cache:bool -> compiled -> Hetstream.t
(** Sequential extraction; dispatches to the fixpoint evaluator for
    recursive COs.  [cache] (default: the [XNFDB_RESULT_CACHE_MB] knob)
    consults the cross-query result cache — a warm repeat returns the
    previously assembled stream without touching the executor.  Passing
    a snapshot-bearing [ctx] (see {!Executor.Exec.make_ctx}) forces the
    cache and IVM maintenance off: both are keyed to live versions, not
    the reader's pinned epoch. *)

val extract_parallel :
  ?domains:int ->
  ?morsel_rows:int ->
  ?threshold:int ->
  ?cache:bool ->
  ?snapshot:(Relcore.Base_table.t -> Relcore.Tuple.t option array) ->
  compiled ->
  Hetstream.t
(** Parallel extraction on the shared domain pool: morsel-parallel
    plans run fanned-out one at a time (populating the CSE cache),
    the rest run concurrently over the frozen cache; the merged stream
    is bit-identical to {!extract}.  [domains] defaults to
    [Relcore.Pool.default_domains ()] ([XNFDB_DOMAINS]); [morsel_rows]
    and [threshold] tune the morsel scheduler (tests use tiny values to
    force parallel paths on small data).  [cache] as in {!extract}. *)

val run :
  ?share:bool ->
  ?nf_rewrite:bool ->
  ?cache:bool ->
  ?ctx:Executor.Exec.ctx ->
  Db.t ->
  string ->
  Hetstream.t
(** Compile and extract in one call; [cache] governs both the
    compiled-query cache and the result cache.  [ctx] is handed to
    {!extract} (a snapshot-bearing ctx turns the result cache and IVM
    off; the compiled-query cache stays on — plans are
    version-independent). *)

val view_text : Db.t -> string -> string
(** The stored text of an XNF view (errors on SQL views / unknown
    names) — lets analysis paths re-enter with query text. *)

val run_view :
  ?share:bool ->
  ?nf_rewrite:bool ->
  ?cache:bool ->
  ?ctx:Executor.Exec.ctx ->
  Db.t ->
  string ->
  Hetstream.t
(** Compile and extract a stored XNF view by name. *)

val expand_component : Catalog.t -> view:string -> component:string -> Starq.Qgm.box
(** [view.component] table-reference expansion (model closure); also
    registered with {!Starq.Build.xnf_component_expander} at link time.
    Rejects cyclic view chains. *)

val explain : Db.t -> string -> string
(** The XNF operator, the rewritten graphs and the plans with their
    sharing structure. *)

val explain_analyze : Db.t -> string -> string
(** Execute the extraction under an instrumented context and report
    per-operator estimated vs actual rows, q-error and inclusive wall
    time, one section per output plan.  Bypasses the result cache so the
    plans actually run. *)
